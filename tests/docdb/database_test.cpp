// Tests for docdb/database: collections, durability, write guard.
#include "docdb/database.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

namespace upin::docdb {
namespace {

using util::ErrorCode;
using util::Value;

Document doc(const char* json) { return Value::parse(json).value(); }

TEST(Database, CollectionIsCreatedOnDemandAndStable) {
  Database db;
  Collection& a = db.collection("paths");
  Collection& b = db.collection("paths");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(db.collection_names(), std::vector<std::string>{"paths"});
}

TEST(Database, FindCollectionWithoutCreating) {
  Database db;
  EXPECT_EQ(db.find_collection("nope"), nullptr);
  db.collection("real");
  EXPECT_NE(db.find_collection("real"), nullptr);
  EXPECT_EQ(db.collection_names().size(), 1u);
}

TEST(Database, DropCollection) {
  Database db;
  db.collection("tmp");
  EXPECT_TRUE(db.drop_collection("tmp"));
  EXPECT_FALSE(db.drop_collection("tmp"));
  EXPECT_EQ(db.find_collection("tmp"), nullptr);
}

TEST(Database, NamesAreSorted) {
  Database db;
  db.collection("zeta");
  db.collection("alpha");
  EXPECT_EQ(db.collection_names(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

class DurableDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("db_test_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(DurableDatabaseTest, InsertSurvivesReopen) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE(db.value()->is_durable());
    ASSERT_TRUE(db.value()
                    ->collection("paths")
                    .insert_one(doc(R"({"_id": "2_1", "hop_count": 5})"))
                    .ok());
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  const auto found = reopened.value()->collection("paths").find_by_id("2_1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().get("hop_count")->as_int(), 5);
}

TEST_F(DurableDatabaseTest, DeleteSurvivesReopen) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->collection("c").insert_one(doc(R"({"_id": "a"})")).ok());
    ASSERT_TRUE(db.value()->collection("c").insert_one(doc(R"({"_id": "b"})")).ok());
    EXPECT_TRUE(db.value()->collection("c").delete_by_id("a"));
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened.value()->collection("c").find_by_id("a").ok());
  EXPECT_TRUE(reopened.value()->collection("c").find_by_id("b").ok());
}

TEST_F(DurableDatabaseTest, IndexDeclarationsSurviveReopen) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    Collection& stats = db.value()->collection("paths_stats");
    // Declared before any compact(): only the live journal meta-record
    // can carry it across the reopen.
    stats.create_index("path_id");
    stats.create_index("path_id,timestamp_ms");
    ASSERT_TRUE(
        stats.insert_one(doc(R"({"path_id": 1, "timestamp_ms": 10})")).ok());
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  Collection& stats = reopened.value()->collection("paths_stats");
  EXPECT_EQ(stats.indexed_fields(),
            (std::vector<std::string>{"path_id", "path_id,timestamp_ms"}));
  // The rebuilt index answers queries (and the planner uses it).
  const auto query =
      Filter::compile(Value::parse(R"({"path_id": 1})").value()).value();
  EXPECT_EQ(stats.count(query), 1u);
  EXPECT_EQ(stats.explain(query).get("plan")->as_string(), "index_point");
}

TEST_F(DurableDatabaseTest, IndexDeclarationsSurviveCompactAndReopen) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    Collection& stats = db.value()->collection("s");
    stats.create_index("a,b");
    ASSERT_TRUE(stats.insert_one(doc(R"({"a": 1, "b": 2})")).ok());
    ASSERT_TRUE(db.value()->compact().ok());
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->collection("s").indexed_fields(),
            std::vector<std::string>{"a,b"});
}

TEST_F(DurableDatabaseTest, UpdateSurvivesReopen) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()
                    ->collection("c")
                    .insert_one(doc(R"({"_id": "a", "v": 1})"))
                    .ok());
    const auto filter =
        Filter::compile(Value::parse(R"({"_id": "a"})").value()).value();
    ASSERT_TRUE(db.value()
                    ->collection("c")
                    .update_many(filter,
                                 Value::parse(R"({"$set": {"v": 9}})").value())
                    .ok());
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(
      reopened.value()->collection("c").find_by_id("a").value().get("v")->as_int(),
      9);
}

TEST_F(DurableDatabaseTest, ParallelWritersReplayToIdenticalState) {
  // The group-commit pipeline stress: concurrent insert_many / insert_one
  // callers on the same collection, then a reopen must reproduce the
  // exact in-memory document set (race-checked under TSan in CI).
  constexpr int kWriters = 4;
  constexpr int kBatches = 10;
  constexpr int kBatchSize = 24;  // a destination-sized batch (§4.2.2)
  std::map<std::string, std::string> expected;
  {
    auto opened = Database::open(path_);
    ASSERT_TRUE(opened.ok());
    Database& db = *opened.value();
    Collection& coll = db.collection("paths_stats");
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&coll, w] {
        for (int b = 0; b < kBatches; ++b) {
          std::vector<Document> batch;
          for (int i = 0; i < kBatchSize; ++i) {
            const std::string id = "w" + std::to_string(w) + "_b" +
                                   std::to_string(b) + "_" +
                                   std::to_string(i);
            batch.push_back(doc(("{\"_id\": \"" + id + "\", \"w\": " +
                                 std::to_string(w) + ", \"n\": " +
                                 std::to_string(b * kBatchSize + i) + "}")
                                    .c_str()));
          }
          EXPECT_TRUE(coll.insert_many(std::move(batch)).ok());
        }
        // A sprinkle of single inserts exercises the same sync path.
        EXPECT_TRUE(
            coll.insert_one(doc(("{\"_id\": \"solo_" + std::to_string(w) +
                                 "\"}")
                                    .c_str()))
                .ok());
      });
    }
    for (auto& t : writers) t.join();
    coll.for_each([&](const Document& d) {
      expected.emplace(std::string(document_id(d).value_or("")), d.dump());
    });
    ASSERT_EQ(expected.size(),
              static_cast<std::size_t>(kWriters * (kBatches * kBatchSize + 1)));
  }

  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  Collection& replayed = reopened.value()->collection("paths_stats");
  ASSERT_EQ(replayed.size(), expected.size());
  std::size_t matched = 0;
  replayed.for_each([&](const Document& d) {
    const auto it = expected.find(std::string(document_id(d).value_or("")));
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(it->second, d.dump());
    ++matched;
  });
  EXPECT_EQ(matched, expected.size());
}

TEST_F(DurableDatabaseTest, ShallowJournalQueueStillCommitsEverything) {
  // A queue depth smaller than the batch forces backpressure mid-batch;
  // nothing may be lost or reordered.
  DatabaseOptions options;
  options.journal_queue_depth = 4;
  {
    auto opened = Database::open(path_, options);
    ASSERT_TRUE(opened.ok());
    std::vector<Document> batch;
    for (int i = 0; i < 64; ++i) {
      batch.push_back(doc(("{\"_id\": \"d" + std::to_string(i) + "\"}")
                              .c_str()));
    }
    ASSERT_TRUE(
        opened.value()->collection("c").insert_many(std::move(batch)).ok());
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->collection("c").size(), 64u);
}

TEST_F(DurableDatabaseTest, CompactPreservesStateAndShrinksHistory) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    Collection& coll = db.value()->collection("c");
    coll.create_index("v");
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          coll.insert_one(Value::object({{"_id", std::to_string(i)}, {"v", i}}))
              .ok());
    }
    ASSERT_EQ(coll.delete_many(Filter::match_all()), 20u);
    ASSERT_TRUE(coll.insert_one(doc(R"({"_id": "only", "v": 1})")).ok());
    const auto size_before = std::filesystem::file_size(path_);
    ASSERT_TRUE(db.value()->compact().ok());
    EXPECT_LT(std::filesystem::file_size(path_), size_before);
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->collection("c").size(), 1u);
}

TEST_F(DurableDatabaseTest, CompactRestoresIndexesOnReplay) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    db.value()->collection("c").create_index("k");
    ASSERT_TRUE(db.value()->collection("c").insert_one(doc(R"({"_id": "a", "k": 1})")).ok());
    ASSERT_TRUE(db.value()->compact().ok());
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->collection("c").indexed_fields(),
            std::vector<std::string>{"k"});
}

TEST(Database, CompactOnInMemoryIsNoop) {
  Database db;
  EXPECT_TRUE(db.compact().ok());
  EXPECT_FALSE(db.is_durable());
}

TEST_F(DurableDatabaseTest, InsertsWhileCompactingLoseNothing) {
  // Satellite: compact() racing the group-commit pipeline.  Writers
  // hammer the collection while the main thread compacts repeatedly;
  // the write gate must guarantee that every insert whose call returned
  // is in the post-compact journal (no loss, no duplication).
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 120;
  {
    auto opened = Database::open(path_);
    ASSERT_TRUE(opened.ok());
    Database& db = *opened.value();
    Collection& coll = db.collection("c");
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&coll, w] {
        for (int i = 0; i < kPerWriter; ++i) {
          const std::string id =
              "w" + std::to_string(w) + "_" + std::to_string(i);
          EXPECT_TRUE(
              coll.insert_one(Value::object({{"_id", id}, {"n", i}})).ok());
        }
      });
    }
    std::thread compactor([&db, &done] {
      while (!done.load()) {
        EXPECT_TRUE(db.compact().ok());
      }
    });
    for (auto& t : writers) t.join();
    done.store(true);
    compactor.join();
    ASSERT_TRUE(db.compact().ok());
  }
  auto reopened = Database::open(path_);
  ASSERT_TRUE(reopened.ok());
  Collection& replayed = reopened.value()->collection("c");
  ASSERT_EQ(replayed.size(),
            static_cast<std::size_t>(kWriters * kPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      EXPECT_TRUE(replayed
                      .find_by_id("w" + std::to_string(w) + "_" +
                                  std::to_string(i))
                      .ok());
    }
  }
}

// --------------------------------------------------------- salvage mode

class SalvageDatabaseTest : public DurableDatabaseTest {
 protected:
  void SetUp() override {
    DurableDatabaseTest::SetUp();
    quarantine_ = path_ + ".quarantine";
    std::filesystem::remove(quarantine_);
  }
  void TearDown() override {
    std::filesystem::remove(quarantine_);
    DurableDatabaseTest::TearDown();
  }

  /// Build a journal with three documents, then flip one payload byte of
  /// the middle insert (newline kept: mid-file corruption, not a torn
  /// tail).
  void corrupt_middle_record() {
    {
      auto db = Database::open(path_);
      ASSERT_TRUE(db.ok());
      for (const char* id : {"a", "b", "c"}) {
        ASSERT_TRUE(db.value()
                        ->collection("paths")
                        .insert_one(Value::object({{"_id", id}, {"v", 1}}))
                        .ok());
      }
    }
    std::string content;
    {
      std::ifstream in(path_, std::ios::binary);
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    const std::size_t victim = content.find("\"b\"");
    ASSERT_NE(victim, std::string::npos);
    content[victim + 1] = 'z';
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::string quarantine_;
};

TEST_F(SalvageDatabaseTest, StrictOpenFailsOnMidfileCorruption) {
  corrupt_middle_record();
  const auto failed = Database::open(path_);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kParseError);
  EXPECT_FALSE(std::filesystem::exists(quarantine_))
      << "strict mode must not write sidecars";
}

TEST_F(SalvageDatabaseTest, SalvageOpenQuarantinesAndScrubs) {
  corrupt_middle_record();
  DatabaseOptions options;
  options.salvage_mode = true;
  {
    auto salvaged = Database::open(path_, options);
    ASSERT_TRUE(salvaged.ok());
    Collection& coll = salvaged.value()->collection("paths");
    EXPECT_EQ(coll.size(), 2u);
    EXPECT_TRUE(coll.find_by_id("a").ok());
    EXPECT_FALSE(coll.find_by_id("b").ok()) << "the corrupt record is gone";
    EXPECT_TRUE(coll.find_by_id("c").ok());
  }
  // The sidecar names the dropped record.
  ASSERT_TRUE(std::filesystem::exists(quarantine_));
  std::string sidecar;
  {
    std::ifstream in(quarantine_);
    sidecar.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  EXPECT_NE(sidecar.find("checksum mismatch"), std::string::npos);
  EXPECT_NE(sidecar.find("crc32="), std::string::npos);

  // Salvage compacted the journal on open, so a later *strict* open
  // succeeds: the corruption was quarantined, not left in place.
  auto strict = Database::open(path_);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict.value()->collection("paths").size(), 2u);
}

TEST_F(SalvageDatabaseTest, SalvageOpenOnCleanJournalWritesNoSidecar) {
  {
    auto db = Database::open(path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        db.value()->collection("c").insert_one(doc(R"({"_id": "a"})")).ok());
  }
  DatabaseOptions options;
  options.salvage_mode = true;
  auto reopened = Database::open(path_, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->collection("c").size(), 1u);
  EXPECT_FALSE(std::filesystem::exists(quarantine_));
}

TEST(WriteGuard, RejectsWithoutCredentialWhenGuarded) {
  Database db;
  db.set_write_guard([](const Value& credential) {
    const Value* token = credential.get("token");
    return token != nullptr && token->is_string() &&
           token->as_string() == "secret";
  });
  EXPECT_TRUE(db.has_write_guard());

  const auto denied = db.guarded_insert("c", doc(R"({"_id": "a"})"), Value());
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, ErrorCode::kPermissionDenied);
  EXPECT_EQ(db.collection("c").size(), 0u);

  const auto allowed = db.guarded_insert(
      "c", doc(R"({"_id": "a"})"), Value::object({{"token", "secret"}}));
  EXPECT_TRUE(allowed.ok());
  EXPECT_EQ(db.collection("c").size(), 1u);
}

TEST(WriteGuard, GuardedInsertManyChecksOnce) {
  Database db;
  int guard_calls = 0;
  db.set_write_guard([&](const Value&) {
    ++guard_calls;
    return true;
  });
  std::vector<Document> batch;
  batch.push_back(doc(R"({"_id": "a"})"));
  batch.push_back(doc(R"({"_id": "b"})"));
  ASSERT_TRUE(db.guarded_insert_many("c", std::move(batch), Value()).ok());
  EXPECT_EQ(guard_calls, 1);
  EXPECT_EQ(db.collection("c").size(), 2u);
}

TEST(WriteGuard, PassingGuardStillEnforcesIdConflicts) {
  Database db;
  db.set_write_guard([](const Value&) { return true; });
  ASSERT_TRUE(db.guarded_insert("c", doc(R"({"_id": "a"})"), Value()).ok());
  const auto conflict =
      db.guarded_insert_many("c", {doc(R"({"_id": "a"})")}, Value());
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.error().code, ErrorCode::kConflict);
  EXPECT_EQ(db.collection("c").size(), 1u);
}

TEST(WriteGuard, UnguardedDatabaseAcceptsAnything) {
  Database db;
  EXPECT_FALSE(db.has_write_guard());
  EXPECT_TRUE(db.guarded_insert("c", doc(R"({"_id": "a"})"), Value()).ok());
}

}  // namespace
}  // namespace upin::docdb
