// Tests for docdb/filter: operator semantics and value ordering.
#include "docdb/filter.hpp"

#include <gtest/gtest.h>

namespace upin::docdb {
namespace {

using util::Value;

Filter compile(const char* json) {
  const auto query = Value::parse(json);
  EXPECT_TRUE(query.ok()) << json;
  auto filter = Filter::compile(query.value());
  EXPECT_TRUE(filter.ok()) << json;
  return std::move(filter).value();
}

Document doc(const char* json) {
  auto parsed = Value::parse(json);
  EXPECT_TRUE(parsed.ok()) << json;
  return std::move(parsed).value();
}

TEST(Filter, EmptyQueryMatchesEverything) {
  const Filter f = compile("{}");
  EXPECT_TRUE(f.matches(doc(R"({"a": 1})")));
  EXPECT_TRUE(f.matches(doc("{}")));
}

TEST(Filter, MatchAllFactory) {
  EXPECT_TRUE(Filter::match_all().matches(doc(R"({"x": 9})")));
}

TEST(Filter, ImplicitEquality) {
  const Filter f = compile(R"({"server_id": 2})");
  EXPECT_TRUE(f.matches(doc(R"({"server_id": 2})")));
  EXPECT_FALSE(f.matches(doc(R"({"server_id": 3})")));
  EXPECT_FALSE(f.matches(doc("{}")));
}

TEST(Filter, EqualityNumericAcrossIntDouble) {
  const Filter f = compile(R"({"v": 2})");
  EXPECT_TRUE(f.matches(doc(R"({"v": 2.0})")));
}

TEST(Filter, EqualityOnStringsIsExact) {
  const Filter f = compile(R"({"status": "alive"})");
  EXPECT_TRUE(f.matches(doc(R"({"status": "alive"})")));
  EXPECT_FALSE(f.matches(doc(R"({"status": "Alive"})")));
}

TEST(Filter, ArrayContainsSemantics) {
  // "paths traversing ISD 17" — equality against an array field.
  const Filter f = compile(R"({"isds": 17})");
  EXPECT_TRUE(f.matches(doc(R"({"isds": [16, 17]})")));
  EXPECT_FALSE(f.matches(doc(R"({"isds": [16, 19]})")));
}

TEST(Filter, ExactArrayEqualityAlsoWorks) {
  const Filter f = compile(R"({"isds": [16, 17]})");
  EXPECT_TRUE(f.matches(doc(R"({"isds": [16, 17]})")));
  EXPECT_FALSE(f.matches(doc(R"({"isds": [17, 16]})")));
}

TEST(Filter, DottedPathLookup) {
  const Filter f = compile(R"({"bw.down_mtu": {"$gt": 10}})");
  EXPECT_TRUE(f.matches(doc(R"({"bw": {"down_mtu": 11.7}})")));
  EXPECT_FALSE(f.matches(doc(R"({"bw": {"down_mtu": 9.9}})")));
  EXPECT_FALSE(f.matches(doc(R"({"bw": {}})")));
}

TEST(Filter, ComparisonOperators) {
  EXPECT_TRUE(compile(R"({"x": {"$gt": 5}})").matches(doc(R"({"x": 6})")));
  EXPECT_FALSE(compile(R"({"x": {"$gt": 5}})").matches(doc(R"({"x": 5})")));
  EXPECT_TRUE(compile(R"({"x": {"$gte": 5}})").matches(doc(R"({"x": 5})")));
  EXPECT_TRUE(compile(R"({"x": {"$lt": 5}})").matches(doc(R"({"x": 4.5})")));
  EXPECT_FALSE(compile(R"({"x": {"$lt": 5}})").matches(doc(R"({"x": 5})")));
  EXPECT_TRUE(compile(R"({"x": {"$lte": 5}})").matches(doc(R"({"x": 5})")));
}

TEST(Filter, RangeConjunctionOnOneField) {
  const Filter f = compile(R"({"latency_ms": {"$gte": 20, "$lt": 50}})");
  EXPECT_TRUE(f.matches(doc(R"({"latency_ms": 20})")));
  EXPECT_TRUE(f.matches(doc(R"({"latency_ms": 49.9})")));
  EXPECT_FALSE(f.matches(doc(R"({"latency_ms": 50})")));
  EXPECT_FALSE(f.matches(doc(R"({"latency_ms": 19})")));
}

TEST(Filter, ComparisonOnMissingFieldNeverMatches) {
  EXPECT_FALSE(compile(R"({"x": {"$gt": 0}})").matches(doc("{}")));
  EXPECT_FALSE(compile(R"({"x": {"$lt": 100}})").matches(doc("{}")));
}

TEST(Filter, ComparisonAnyElementOfArray) {
  const Filter f = compile(R"({"loss": {"$gt": 50}})");
  EXPECT_TRUE(f.matches(doc(R"({"loss": [0, 100]})")));
  EXPECT_FALSE(f.matches(doc(R"({"loss": [0, 10]})")));
}

TEST(Filter, StringComparisonIsLexicographic) {
  const Filter f = compile(R"({"name": {"$lt": "m"}})");
  EXPECT_TRUE(f.matches(doc(R"({"name": "abc"})")));
  EXPECT_FALSE(f.matches(doc(R"({"name": "zebra"})")));
}

TEST(Filter, CrossTypeComparisonUsesTypeRank) {
  // null < bool < number < string: a string is never $lt a number.
  EXPECT_FALSE(compile(R"({"x": {"$lt": 5}})").matches(doc(R"({"x": "4"})")));
  EXPECT_TRUE(compile(R"({"x": {"$gt": 5}})").matches(doc(R"({"x": "4"})")));
}

TEST(Filter, NotEqual) {
  const Filter f = compile(R"({"status": {"$ne": "dead"}})");
  EXPECT_TRUE(f.matches(doc(R"({"status": "alive"})")));
  EXPECT_FALSE(f.matches(doc(R"({"status": "dead"})")));
  EXPECT_TRUE(f.matches(doc("{}")));  // missing != value
}

TEST(Filter, NeAgainstArrayContains) {
  const Filter f = compile(R"({"isds": {"$ne": 16}})");
  EXPECT_FALSE(f.matches(doc(R"({"isds": [16, 17]})")));
  EXPECT_TRUE(f.matches(doc(R"({"isds": [17, 19]})")));
}

TEST(Filter, InOperator) {
  const Filter f = compile(R"({"server_id": {"$in": [1, 3, 5]}})");
  EXPECT_TRUE(f.matches(doc(R"({"server_id": 3})")));
  EXPECT_FALSE(f.matches(doc(R"({"server_id": 2})")));
  EXPECT_FALSE(f.matches(doc("{}")));
}

TEST(Filter, InAgainstArrayField) {
  const Filter f = compile(R"({"isds": {"$in": [20, 25]}})");
  EXPECT_TRUE(f.matches(doc(R"({"isds": [16, 20]})")));
  EXPECT_FALSE(f.matches(doc(R"({"isds": [16, 17]})")));
}

TEST(Filter, NinOperator) {
  const Filter f = compile(R"({"server_id": {"$nin": [1, 2]}})");
  EXPECT_TRUE(f.matches(doc(R"({"server_id": 3})")));
  EXPECT_FALSE(f.matches(doc(R"({"server_id": 1})")));
  EXPECT_TRUE(f.matches(doc("{}")));  // vacuously true
}

TEST(Filter, ExistsOperator) {
  const Filter yes = compile(R"({"latency_ms": {"$exists": true}})");
  const Filter no = compile(R"({"latency_ms": {"$exists": false}})");
  EXPECT_TRUE(yes.matches(doc(R"({"latency_ms": 12})")));
  EXPECT_FALSE(yes.matches(doc("{}")));
  EXPECT_TRUE(no.matches(doc("{}")));
  EXPECT_FALSE(no.matches(doc(R"({"latency_ms": null})")));  // null exists
}

TEST(Filter, SizeOperator) {
  const Filter f = compile(R"({"isds": {"$size": 2}})");
  EXPECT_TRUE(f.matches(doc(R"({"isds": [16, 17]})")));
  EXPECT_FALSE(f.matches(doc(R"({"isds": [16]})")));
  EXPECT_FALSE(f.matches(doc(R"({"isds": 2})")));
}

TEST(Filter, AllOperator) {
  const Filter f = compile(R"({"isds": {"$all": [16, 17]}})");
  EXPECT_TRUE(f.matches(doc(R"({"isds": [17, 19, 16]})")));
  EXPECT_FALSE(f.matches(doc(R"({"isds": [16, 19]})")));
}

TEST(Filter, ElemMatchOperator) {
  const Filter f = compile(
      R"({"runs": {"$elemMatch": {"loss": {"$gt": 50}, "size": 64}}})");
  EXPECT_TRUE(f.matches(
      doc(R"({"runs": [{"loss": 90, "size": 64}, {"loss": 0, "size": 1452}]})")));
  // No single element satisfies both conditions.
  EXPECT_FALSE(f.matches(
      doc(R"({"runs": [{"loss": 90, "size": 1452}, {"loss": 0, "size": 64}]})")));
}

TEST(Filter, AndOperator) {
  const Filter f = compile(
      R"({"$and": [{"server_id": 2}, {"hop_count": {"$lte": 6}}]})");
  EXPECT_TRUE(f.matches(doc(R"({"server_id": 2, "hop_count": 6})")));
  EXPECT_FALSE(f.matches(doc(R"({"server_id": 2, "hop_count": 7})")));
}

TEST(Filter, OrOperator) {
  const Filter f = compile(R"({"$or": [{"a": 1}, {"b": 2}]})");
  EXPECT_TRUE(f.matches(doc(R"({"a": 1})")));
  EXPECT_TRUE(f.matches(doc(R"({"b": 2})")));
  EXPECT_FALSE(f.matches(doc(R"({"a": 2, "b": 1})")));
}

TEST(Filter, NorOperator) {
  const Filter f = compile(R"({"$nor": [{"a": 1}, {"b": 2}]})");
  EXPECT_FALSE(f.matches(doc(R"({"a": 1})")));
  EXPECT_TRUE(f.matches(doc(R"({"a": 2})")));
}

TEST(Filter, NotOperator) {
  const Filter f = compile(R"({"loss_pct": {"$not": {"$gt": 10}}})");
  EXPECT_TRUE(f.matches(doc(R"({"loss_pct": 5})")));
  EXPECT_FALSE(f.matches(doc(R"({"loss_pct": 50})")));
  EXPECT_TRUE(f.matches(doc("{}")));  // $not of a non-match
}

TEST(Filter, ImplicitTopLevelConjunction) {
  const Filter f = compile(R"({"a": 1, "b": {"$lt": 5}})");
  EXPECT_TRUE(f.matches(doc(R"({"a": 1, "b": 3})")));
  EXPECT_FALSE(f.matches(doc(R"({"a": 1, "b": 7})")));
  EXPECT_FALSE(f.matches(doc(R"({"a": 2, "b": 3})")));
}

TEST(Filter, NestedLogicalOperators) {
  const Filter f = compile(
      R"({"$or": [{"$and": [{"a": 1}, {"b": 1}]}, {"c": {"$gte": 10}}]})");
  EXPECT_TRUE(f.matches(doc(R"({"a": 1, "b": 1})")));
  EXPECT_TRUE(f.matches(doc(R"({"c": 10})")));
  EXPECT_FALSE(f.matches(doc(R"({"a": 1, "c": 9})")));
}

TEST(Filter, RegexOperator) {
  const Filter f = compile(R"({"address": {"$regex": "^16-ffaa"}})");
  EXPECT_TRUE(f.matches(doc(R"({"address": "16-ffaa:0:1002,[1.2.3.4]"})")));
  EXPECT_FALSE(f.matches(doc(R"({"address": "17-ffaa:0:1107"})")));
  EXPECT_FALSE(f.matches(doc(R"({"address": 16})")));
}

TEST(Filter, LikeOperatorWildcards) {
  const Filter f = compile(R"({"path_id": {"$like": "2_*"}})");
  EXPECT_TRUE(f.matches(doc(R"({"path_id": "2_15"})")));
  EXPECT_FALSE(f.matches(doc(R"({"path_id": "3_15"})")));
}

TEST(Filter, CompileRejectsBadQueries) {
  EXPECT_FALSE(Filter::compile(Value(3)).ok());
  EXPECT_FALSE(Filter::compile(Value::parse(R"({"$bogus": []})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"a": {"$frob": 1}})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"$and": []})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"$and": 3})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"a": {"$in": 5}})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"a": {"$exists": 1}})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"a": {"$size": "x"}})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"a": {"$regex": "["}})").value()).ok());
  EXPECT_FALSE(
      Filter::compile(Value::parse(R"({"a": {"$regex": 7}})").value()).ok());
}

TEST(Filter, EqualityOnDetectsIndexableField) {
  const Filter f = compile(R"({"path_id": "2_15", "loss": {"$lt": 5}})");
  const Value* pinned = f.equality_on("path_id");
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->as_string(), "2_15");
  EXPECT_EQ(f.equality_on("loss"), nullptr);
  EXPECT_EQ(f.equality_on("other"), nullptr);
}

TEST(Filter, EqualityOnSingleClause) {
  const Filter f = compile(R"({"server_id": 2})");
  ASSERT_NE(f.equality_on("server_id"), nullptr);
  EXPECT_EQ(f.equality_on("server_id")->as_int(), 2);
}

TEST(Filter, EqualityOnIgnoresDisjunctions) {
  const Filter f = compile(R"({"$or": [{"a": 1}, {"a": 2}]})");
  EXPECT_EQ(f.equality_on("a"), nullptr);
}

TEST(CompareValues, TotalOrderAcrossTypes) {
  EXPECT_LT(compare_values(Value(nullptr), Value(false)), 0);
  EXPECT_LT(compare_values(Value(true), Value(0)), 0);
  EXPECT_LT(compare_values(Value(5), Value("a")), 0);
  EXPECT_LT(compare_values(Value("z"), Value(Value::Array{})), 0);
}

TEST(CompareValues, NumbersCompareNumerically) {
  EXPECT_EQ(compare_values(Value(2), Value(2.0)), 0);
  EXPECT_LT(compare_values(Value(2), Value(2.5)), 0);
  EXPECT_GT(compare_values(Value(3.5), Value(3)), 0);
}

TEST(CompareValues, ArraysCompareLexicographically) {
  EXPECT_LT(compare_values(Value::array({1, 2}), Value::array({1, 3})), 0);
  EXPECT_LT(compare_values(Value::array({1}), Value::array({1, 0})), 0);
  EXPECT_EQ(compare_values(Value::array({1, 2}), Value::array({1, 2})), 0);
}

// ------------------------------------------------- planner bound extraction

TEST(FilterBounds, ExtractsEqualityRangeAndIn) {
  const Filter f = compile(
      R"({"path_id": 3, "loss_pct": {"$gte": 0, "$lt": 10},
          "server_id": {"$in": [1, 2]}})");
  const auto bounds = f.extractable_bounds();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0].first, "path_id");
  ASSERT_EQ(bounds[0].second.size(), 1u);
  EXPECT_EQ(bounds[0].second[0].op, Filter::Bound::Op::kEq);
  EXPECT_EQ(*bounds[0].second[0].operand, Value(3));
  EXPECT_EQ(bounds[1].first, "loss_pct");
  ASSERT_EQ(bounds[1].second.size(), 2u);
  EXPECT_EQ(bounds[1].second[0].op, Filter::Bound::Op::kGte);
  EXPECT_EQ(bounds[1].second[1].op, Filter::Bound::Op::kLt);
  EXPECT_EQ(bounds[2].first, "server_id");
  ASSERT_EQ(bounds[2].second.size(), 1u);
  EXPECT_EQ(bounds[2].second[0].op, Filter::Bound::Op::kIn);
  ASSERT_NE(bounds[2].second[0].list, nullptr);
  EXPECT_EQ(bounds[2].second[0].list->size(), 2u);
  EXPECT_EQ(f.clause_count(), 4u);
}

TEST(FilterBounds, FlattensNestedAnd) {
  const Filter f = compile(
      R"({"$and": [{"a": 1}, {"$and": [{"b": {"$gt": 2}}, {"c": 3}]}]})");
  const auto bounds = f.extractable_bounds();
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0].first, "a");
  EXPECT_EQ(bounds[1].first, "b");
  EXPECT_EQ(bounds[2].first, "c");
  EXPECT_EQ(f.clause_count(), 3u);
}

TEST(FilterBounds, DisjunctionsStayOpaque) {
  const Filter f =
      compile(R"({"a": 1, "$or": [{"b": 2}, {"c": 3}]})");
  const auto bounds = f.extractable_bounds();
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0].first, "a");
  // The $or subtree counts as one unextractable clause.
  EXPECT_EQ(f.clause_count(), 2u);
}

TEST(FilterBounds, UnextractableOperatorsCountAsClauses) {
  const Filter f = compile(R"({"a": {"$ne": 1}, "b": {"$exists": true}})");
  EXPECT_TRUE(f.extractable_bounds().empty());
  EXPECT_EQ(f.clause_count(), 2u);
}

TEST(FilterBounds, MatchAllHasNoClauses) {
  EXPECT_TRUE(Filter::match_all().is_match_all());
  EXPECT_EQ(Filter::match_all().clause_count(), 0u);
  EXPECT_TRUE(compile("{}").is_match_all());
  EXPECT_FALSE(compile(R"({"a": 1})").is_match_all());
}

}  // namespace
}  // namespace upin::docdb
