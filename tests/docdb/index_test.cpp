// Tests for docdb/index (OrderedIndex).
#include "docdb/index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace upin::docdb {
namespace {

using util::Value;

Document doc(const char* json) { return Value::parse(json).value(); }

/// Point range on a single-field index.
OrderedIndex::Range point(Value value) {
  OrderedIndex::Range range;
  range.prefix.push_back(std::move(value));
  return range;
}

std::vector<std::size_t> lookup(const OrderedIndex& index, Value value) {
  std::vector<std::size_t> hits;
  index.collect(point(std::move(value)), hits);
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

TEST(OrderedIndex, SpecSplitAndJoin) {
  EXPECT_EQ(split_index_spec("path_id"), std::vector<std::string>{"path_id"});
  EXPECT_EQ(split_index_spec("path_id,timestamp_ms"),
            (std::vector<std::string>{"path_id", "timestamp_ms"}));
  EXPECT_EQ(join_index_spec({"a", "b"}), "a,b");
  const OrderedIndex index("path_id,timestamp_ms");
  EXPECT_EQ(index.spec(), "path_id,timestamp_ms");
  EXPECT_FALSE(index.single_field());
}

TEST(OrderedIndex, LookupAfterAdd) {
  OrderedIndex index("server_id");
  index.add(doc(R"({"server_id": 2})"), 0);
  index.add(doc(R"({"server_id": 2})"), 1);
  index.add(doc(R"({"server_id": 3})"), 2);
  EXPECT_EQ(lookup(index, Value(2)), (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(lookup(index, Value(9)).empty());
  EXPECT_EQ(index.entry_count(), 3u);
}

TEST(OrderedIndex, RemoveDropsPosition) {
  OrderedIndex index("k");
  const Document d = doc(R"({"k": "x"})");
  index.add(d, 0);
  index.add(d, 1);
  index.remove(d, 0);
  EXPECT_EQ(lookup(index, Value("x")), std::vector<std::size_t>{1});
  index.remove(d, 1);
  EXPECT_TRUE(lookup(index, Value("x")).empty());
  EXPECT_EQ(index.distinct_keys(), 0u);
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST(OrderedIndex, MissingFieldFoldsToNull) {
  OrderedIndex index("k");
  index.add(doc(R"({"other": 1})"), 0);
  // Every live document appears in every index: missing keys fold to
  // null so index order matches the scan-side sort order.
  EXPECT_EQ(index.distinct_keys(), 1u);
  EXPECT_TRUE(index.has_missing());
  EXPECT_EQ(lookup(index, Value()), std::vector<std::size_t>{0});
  index.remove(doc(R"({"other": 1})"), 0);
  EXPECT_FALSE(index.has_missing());
}

TEST(OrderedIndex, DottedFieldPath) {
  OrderedIndex index("bw.up_64");
  index.add(doc(R"({"bw": {"up_64": 4.5}})"), 3);
  EXPECT_EQ(lookup(index, Value(4.5)), std::vector<std::size_t>{3});
}

TEST(OrderedIndex, MultikeyArrayIndexing) {
  OrderedIndex index("isds");
  index.add(doc(R"({"isds": [16, 17]})"), 0);
  EXPECT_TRUE(index.multikey());
  EXPECT_EQ(lookup(index, Value(16)), std::vector<std::size_t>{0});
  EXPECT_EQ(lookup(index, Value(17)), std::vector<std::size_t>{0});
  // Whole-array key also present (exact-array equality).
  EXPECT_EQ(lookup(index, Value::array({16, 17})),
            std::vector<std::size_t>{0});
  index.remove(doc(R"({"isds": [16, 17]})"), 0);
  EXPECT_EQ(index.entry_count(), 0u);
  // multikey() is sticky: the planner stays conservative.
  EXPECT_TRUE(index.multikey());
}

TEST(OrderedIndex, DuplicateArrayElementsSinglePosting) {
  OrderedIndex index("isds");
  index.add(doc(R"({"isds": [16, 16]})"), 0);
  EXPECT_EQ(lookup(index, Value(16)), std::vector<std::size_t>{0});
  index.remove(doc(R"({"isds": [16, 16]})"), 0);
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST(OrderedIndex, CompoundKeysAndPrefixScan) {
  OrderedIndex index("path_id,timestamp_ms");
  index.add(doc(R"({"path_id": 1, "timestamp_ms": 10})"), 0);
  index.add(doc(R"({"path_id": 1, "timestamp_ms": 20})"), 1);
  index.add(doc(R"({"path_id": 2, "timestamp_ms": 5})"), 2);

  // Equality prefix alone scans every timestamp under path 1.
  OrderedIndex::Range prefix_only;
  prefix_only.prefix.push_back(Value(1));
  std::vector<std::size_t> hits;
  index.collect(prefix_only, hits);
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1}));

  // Prefix plus a window on the next column.
  OrderedIndex::Range windowed = prefix_only;
  const Value since(15);
  windowed.lower = &since;
  hits.clear();
  index.collect(windowed, hits);
  EXPECT_EQ(hits, std::vector<std::size_t>{1});
}

TEST(OrderedIndex, RangeWindowRespectsInclusivity) {
  OrderedIndex index("v");
  index.add(doc(R"({"v": 1})"), 0);
  index.add(doc(R"({"v": 2})"), 1);
  index.add(doc(R"({"v": 3})"), 2);

  OrderedIndex::Range range;
  const Value lo(1);
  const Value hi(3);
  range.lower = &lo;
  range.lower_inclusive = false;
  range.upper = &hi;
  range.upper_inclusive = false;
  std::vector<std::size_t> hits;
  index.collect(range, hits);
  EXPECT_EQ(hits, std::vector<std::size_t>{1});

  range.lower_inclusive = true;
  range.upper_inclusive = true;
  hits.clear();
  index.collect(range, hits);
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(OrderedIndex, ScanWalksKeyOrderBothWays) {
  OrderedIndex index("v");
  index.add(doc(R"({"v": 30})"), 0);
  index.add(doc(R"({"v": 10})"), 1);
  index.add(doc(R"({"v": 20})"), 2);
  index.add(doc(R"({"v": 10})"), 3);

  std::vector<std::size_t> order;
  index.scan(OrderedIndex::Range{}, false,
             [&](const IndexKey&, const std::vector<std::size_t>& positions) {
               order.insert(order.end(), positions.begin(), positions.end());
               return true;
             });
  // Key order ascending; ties (both v=10) in insertion order.
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));

  order.clear();
  index.scan(OrderedIndex::Range{}, true,
             [&](const IndexKey&, const std::vector<std::size_t>& positions) {
               order.insert(order.end(), positions.begin(), positions.end());
               return true;
             });
  // Descending keys, but positions within one key still ascend.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1, 3}));
}

TEST(OrderedIndex, ScanStopsWhenVisitorReturnsFalse) {
  OrderedIndex index("v");
  index.add(doc(R"({"v": 1})"), 0);
  index.add(doc(R"({"v": 2})"), 1);
  std::size_t visited = 0;
  index.scan(OrderedIndex::Range{}, false,
             [&](const IndexKey&, const std::vector<std::size_t>&) {
               ++visited;
               return false;
             });
  EXPECT_EQ(visited, 1u);
}

TEST(OrderedIndex, NumericKeysCollideAcrossIntDouble) {
  OrderedIndex index("v");
  index.add(doc(R"({"v": 2})"), 0);
  EXPECT_EQ(lookup(index, Value(2.0)), std::vector<std::size_t>{0});
  EXPECT_EQ(index.distinct_keys(), 1u);
  index.add(doc(R"({"v": 2.0})"), 1);
  EXPECT_EQ(index.distinct_keys(), 1u);
}

TEST(OrderedIndex, StringAndNumberKeysDoNotCollide) {
  OrderedIndex index("v");
  index.add(doc(R"({"v": "2"})"), 0);
  EXPECT_TRUE(lookup(index, Value(2)).empty());
}

TEST(OrderedIndex, BoolAndNullKeys) {
  OrderedIndex index("v");
  index.add(doc(R"({"v": true})"), 0);
  index.add(doc(R"({"v": null})"), 1);
  EXPECT_EQ(lookup(index, Value(true)), std::vector<std::size_t>{0});
  EXPECT_EQ(lookup(index, Value(nullptr)), std::vector<std::size_t>{1});
  EXPECT_TRUE(lookup(index, Value(false)).empty());
}

TEST(OrderedIndex, DistinctValuesSkipsMissingFolds) {
  OrderedIndex index("v");
  index.add(doc(R"({"v": 2})"), 0);
  index.add(doc(R"({"other": 1})"), 1);  // folded null, not a stored null
  std::vector<Value> values = index.distinct_values(OrderedIndex::Range{});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], Value(2));

  index.add(doc(R"({"v": null})"), 2);  // a *stored* null counts
  values = index.distinct_values(OrderedIndex::Range{});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_TRUE(values[0].is_null());
}

TEST(OrderedIndex, CountInRangeDedupsMultikey) {
  OrderedIndex index("isds");
  index.add(doc(R"({"isds": [16, 17]})"), 0);
  index.add(doc(R"({"isds": [17]})"), 1);
  OrderedIndex::Range range;
  const Value lo(16);
  range.lower = &lo;
  // Document 0 has two in-range elements but counts once.
  EXPECT_EQ(index.count_in_range(range), 2u);
}

TEST(OrderedIndex, ClearEmptiesEverything) {
  OrderedIndex index("k");
  index.add(doc(R"({"k": 1})"), 0);
  index.clear();
  EXPECT_EQ(index.distinct_keys(), 0u);
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_FALSE(index.has_missing());
}

}  // namespace
}  // namespace upin::docdb
