// Tests for docdb/index.
#include "docdb/index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace upin::docdb {
namespace {

using util::Value;

Document doc(const char* json) { return Value::parse(json).value(); }

TEST(FieldIndex, LookupAfterAdd) {
  FieldIndex index("server_id");
  index.add(doc(R"({"server_id": 2})"), 0);
  index.add(doc(R"({"server_id": 2})"), 1);
  index.add(doc(R"({"server_id": 3})"), 2);
  auto hits = index.lookup(Value(2));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(index.lookup(Value(9)).size(), 0u);
}

TEST(FieldIndex, RemoveDropsPosition) {
  FieldIndex index("k");
  const Document d = doc(R"({"k": "x"})");
  index.add(d, 0);
  index.add(d, 1);
  index.remove(d, 0);
  EXPECT_EQ(index.lookup(Value("x")), std::vector<std::size_t>{1});
  index.remove(d, 1);
  EXPECT_TRUE(index.lookup(Value("x")).empty());
  EXPECT_EQ(index.distinct_keys(), 0u);
}

TEST(FieldIndex, MissingFieldNotIndexed) {
  FieldIndex index("k");
  index.add(doc(R"({"other": 1})"), 0);
  EXPECT_EQ(index.distinct_keys(), 0u);
}

TEST(FieldIndex, DottedFieldPath) {
  FieldIndex index("bw.up_64");
  index.add(doc(R"({"bw": {"up_64": 4.5}})"), 3);
  EXPECT_EQ(index.lookup(Value(4.5)), std::vector<std::size_t>{3});
}

TEST(FieldIndex, MultikeyArrayIndexing) {
  FieldIndex index("isds");
  index.add(doc(R"({"isds": [16, 17]})"), 0);
  EXPECT_EQ(index.lookup(Value(16)), std::vector<std::size_t>{0});
  EXPECT_EQ(index.lookup(Value(17)), std::vector<std::size_t>{0});
  // Whole-array key also present.
  EXPECT_EQ(index.lookup(Value::array({16, 17})), std::vector<std::size_t>{0});
}

TEST(FieldIndex, NumericKeysCollideAcrossIntDouble) {
  FieldIndex index("v");
  index.add(doc(R"({"v": 2})"), 0);
  EXPECT_EQ(index.lookup(Value(2.0)), std::vector<std::size_t>{0});
}

TEST(FieldIndex, StringAndNumberKeysDoNotCollide) {
  FieldIndex index("v");
  index.add(doc(R"({"v": "2"})"), 0);
  EXPECT_TRUE(index.lookup(Value(2)).empty());
}

TEST(FieldIndex, BoolAndNullKeys) {
  FieldIndex index("v");
  index.add(doc(R"({"v": true})"), 0);
  index.add(doc(R"({"v": null})"), 1);
  EXPECT_EQ(index.lookup(Value(true)), std::vector<std::size_t>{0});
  EXPECT_EQ(index.lookup(Value(nullptr)), std::vector<std::size_t>{1});
  EXPECT_TRUE(index.lookup(Value(false)).empty());
}

TEST(FieldIndex, ClearEmptiesEverything) {
  FieldIndex index("k");
  index.add(doc(R"({"k": 1})"), 0);
  index.clear();
  EXPECT_EQ(index.distinct_keys(), 0u);
}

TEST(FieldIndex, EncodeKeyDistinguishesTypes) {
  EXPECT_NE(FieldIndex::encode_key(Value(1)), FieldIndex::encode_key(Value("1")));
  EXPECT_NE(FieldIndex::encode_key(Value(true)), FieldIndex::encode_key(Value(1)));
  EXPECT_EQ(FieldIndex::encode_key(Value(1)), FieldIndex::encode_key(Value(1.0)));
}

}  // namespace
}  // namespace upin::docdb
