// Tests for docdb/journal: append, replay, corruption, rewrite.
#include "docdb/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

namespace upin::docdb {
namespace {

using util::Value;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("journal_test_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  JournalRecord insert_record(const std::string& id) {
    JournalRecord record;
    record.op = "insert";
    record.collection = "paths";
    record.id = id;
    record.document = Value::object({{"_id", id}, {"v", 1}});
    return record;
  }

  std::string path_;
};

TEST_F(JournalTest, AppendAndReplayRoundTrip) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.append(insert_record("b")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
}

TEST_F(JournalTest, ReplayMissingFileIsEmptySuccess) {
  int calls = 0;
  ASSERT_TRUE(Journal::replay("/nonexistent/journal.jsonl",
                              [&](const JournalRecord&) {
                                ++calls;
                                return util::Status::success();
                              })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST_F(JournalTest, ReplaySkipsEmptyLines) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n\n";
  }
  int calls = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord&) {
                ++calls;
                return util::Status::success();
              }).ok());
  EXPECT_EQ(calls, 1);
}

TEST_F(JournalTest, ReplayStopsAtCorruptLine) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n";
    out << "{corrupt\n";
  }
  int calls = 0;
  const auto status = Journal::replay(path_, [&](const JournalRecord&) {
    ++calls;
    return util::Status::success();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_EQ(calls, 1) << "records before the corruption stand";
}

TEST_F(JournalTest, ReplayRejectsRecordsMissingOpOrColl) {
  {
    std::ofstream out(path_);
    out << R"({"id":"a"})" << "\n";
  }
  EXPECT_FALSE(Journal::replay(path_, [](const JournalRecord&) {
                 return util::Status::success();
               }).ok());
}

TEST_F(JournalTest, ReplayPropagatesCallbackError) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  const auto status = Journal::replay(path_, [](const JournalRecord&) {
    return util::Status(util::ErrorCode::kConflict, "boom");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kConflict);
}

TEST_F(JournalTest, AppendWithoutOpenFails) {
  Journal journal;
  EXPECT_FALSE(journal.append(insert_record("a")).ok());
  EXPECT_FALSE(journal.flush().ok());
}

TEST_F(JournalTest, RewriteReplacesContents) {
  Journal journal;
  ASSERT_TRUE(journal.open(path_).ok());
  ASSERT_TRUE(journal.append(insert_record("old")).ok());
  ASSERT_TRUE(journal.flush().ok());

  ASSERT_TRUE(journal.rewrite({insert_record("fresh")}).ok());

  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, std::vector<std::string>{"fresh"});
}

TEST_F(JournalTest, AppendsAfterRewriteLand) {
  Journal journal;
  ASSERT_TRUE(journal.open(path_).ok());
  ASSERT_TRUE(journal.rewrite({insert_record("a")}).ok());
  ASSERT_TRUE(journal.append(insert_record("b")).ok());
  ASSERT_TRUE(journal.flush().ok());
  int calls = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord&) {
                ++calls;
                return util::Status::success();
              }).ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(JournalTest, AppendedRecordsCarryChecksums) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::ifstream in(path_);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(line.starts_with("crc32="));
}

TEST_F(JournalTest, ChecksumMismatchMidFileIsHardError) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.append(insert_record("b")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  // Flip one payload byte of the first record (newline-terminated, so it
  // cannot be mistaken for a torn tail).
  std::string content;
  {
    std::ifstream in(path_, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  const std::size_t victim = content.find("\"a\"");
  ASSERT_NE(victim, std::string::npos);
  content[victim + 1] = 'z';
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }
  int calls = 0;
  ReplayReport report;
  const auto status = Journal::replay(
      path_,
      [&](const JournalRecord&) {
        ++calls;
        return util::Status::success();
      },
      &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_NE(status.error().message.find("checksum mismatch"),
            std::string::npos);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(calls, 0);
}

TEST_F(JournalTest, TornTailIsRecoveredAndReported) {
  std::size_t intact_bytes = 0;
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.append(insert_record("b")).ok());
    ASSERT_TRUE(journal.flush().ok());
    intact_bytes = std::filesystem::file_size(path_);
  }
  {
    // Simulate a crash mid-append: a partial frame with no newline.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "crc32=0123abcd {\"op\":\"ins";
  }
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [&](const JournalRecord& record) {
                    ids.push_back(record.id);
                    return util::Status::success();
                  },
                  &report)
                  .ok())
      << "a crash-truncated tail is recoverable, not fatal";
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.torn_tail_line, 3u);
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_EQ(report.valid_prefix_bytes, intact_bytes);
}

TEST_F(JournalTest, SameGarbageWithNewlineIsHardCorruption) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  {
    // The identical garbage, but newline-terminated: the writer claimed
    // the record was complete, so this is mid-file corruption.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "crc32=0123abcd {\"op\":\"ins\n";
  }
  ReplayReport report;
  const auto status = Journal::replay(
      path_, [](const JournalRecord&) { return util::Status::success(); },
      &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_FALSE(report.torn_tail);
}

TEST_F(JournalTest, TornTailOnUncheckummedGarbageToo) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "garbage-with-no-structure";
  }
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(path_,
                              [](const JournalRecord&) {
                                return util::Status::success();
                              },
                              &report)
                  .ok());
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.records_applied, 1u);
}

TEST_F(JournalTest, LegacyChecksumlessJournalsStillReplay) {
  {
    // A journal written before per-record checksums: bare JSON lines.
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n";
    out << R"({"op":"insert","coll":"c","id":"b","doc":{"_id":"b"}})" << "\n";
  }
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [&](const JournalRecord& record) {
                    ids.push_back(record.id);
                    return util::Status::success();
                  },
                  &report)
                  .ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.records_applied, 2u);
}

TEST_F(JournalTest, MixedLegacyAndChecksummedLinesReplay) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"legacy","doc":{"_id":"l"}})"
        << "\n";
  }
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("framed")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"legacy", "framed"}));
}

TEST_F(JournalTest, InterleavedLegacyAndFramedLinesReplayInOrder) {
  // A journal that grew across format generations: bare JSON lines
  // interleaved with CRC-framed ones, in both orders.
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"l1","doc":{"_id":"l1"}})"
        << "\n";
  }
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("f1")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  {
    std::ofstream out(path_, std::ios::app);
    out << R"({"op":"insert","coll":"c","id":"l2","doc":{"_id":"l2"}})"
        << "\n";
  }
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("f2")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [&](const JournalRecord& record) {
                    ids.push_back(record.id);
                    return util::Status::success();
                  },
                  &report)
                  .ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"l1", "f1", "l2", "f2"}));
  EXPECT_EQ(report.records_applied, 4u);
  EXPECT_FALSE(report.torn_tail);
}

TEST_F(JournalTest, TornTailAfterLegacyLineIsDetected) {
  std::size_t intact_bytes = 0;
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"legacy","doc":{"_id":"l"}})"
        << "\n";
    out.flush();
    intact_bytes = static_cast<std::size_t>(out.tellp());
    out << R"({"op":"ins)";  // crash mid-append of a legacy-format line
  }
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [&](const JournalRecord& record) {
                    ids.push_back(record.id);
                    return util::Status::success();
                  },
                  &report)
                  .ok());
  EXPECT_EQ(ids, std::vector<std::string>{"legacy"});
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.torn_tail_line, 2u);
  EXPECT_EQ(report.valid_prefix_bytes, intact_bytes);
}

// ------------------------------------------------------- salvage mode

class SalvageTest : public JournalTest {
 protected:
  void SetUp() override {
    JournalTest::SetUp();
    quarantine_ = path_ + ".quarantine";
    std::filesystem::remove(quarantine_);
  }
  void TearDown() override {
    std::filesystem::remove(quarantine_);
    JournalTest::TearDown();
  }

  /// Write three framed records and flip one payload byte of the middle
  /// one (newline kept, so it reads as mid-file corruption).
  void write_bitflipped_journal() {
    {
      Journal journal;
      ASSERT_TRUE(journal.open(path_).ok());
      for (const char* id : {"a", "b", "c"}) {
        ASSERT_TRUE(journal.append(insert_record(id)).ok());
      }
      ASSERT_TRUE(journal.flush().ok());
    }
    std::string content;
    {
      std::ifstream in(path_, std::ios::binary);
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    const std::size_t victim = content.find("\"b\"");
    ASSERT_NE(victim, std::string::npos);
    content[victim + 1] = 'z';
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::string quarantine_;
};

TEST_F(SalvageTest, StrictReplayStillFailsHard) {
  write_bitflipped_journal();
  const auto status = Journal::replay(
      path_, [](const JournalRecord&) { return util::Status::success(); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
}

TEST_F(SalvageTest, SalvageQuarantinesCorruptLineAndReplaysRest) {
  write_bitflipped_journal();
  ReplayOptions options;
  options.salvage = true;
  options.quarantine_path = quarantine_;
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [&](const JournalRecord& record) {
                    ids.push_back(record.id);
                    return util::Status::success();
                  },
                  &report, options)
                  .ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "c"}))
      << "the corrupt middle record is dropped, its neighbors replay";
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_EQ(report.quarantined_records, 1u);
  EXPECT_EQ(report.first_quarantined_line, 2u);
  EXPECT_EQ(report.quarantine_path, quarantine_);

  // The sidecar names the source line and reason, then carries the raw
  // bytes so nothing is destroyed, only set aside.
  std::ifstream in(quarantine_);
  std::string header;
  std::string raw;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, raw));
  EXPECT_NE(header.find("line 2"), std::string::npos);
  EXPECT_NE(header.find("checksum mismatch"), std::string::npos);
  EXPECT_TRUE(raw.starts_with("crc32="));
}

TEST_F(SalvageTest, SalvageLeavesTornTailContractUnchanged) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "crc32=0123abcd {\"op\":\"ins";  // torn, not quarantined
  }
  ReplayOptions options;
  options.salvage = true;
  options.quarantine_path = quarantine_;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [](const JournalRecord&) { return util::Status::success(); },
                  &report, options)
                  .ok());
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.quarantined_records, 0u);
  EXPECT_FALSE(std::filesystem::exists(quarantine_));
}

// ------------------------------------------ group-commit pipeline tests

TEST_F(JournalTest, PipelineEnqueueSyncReplayRoundTrip) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    journal.start_writer();
    std::uint64_t last = 0;
    for (const char* id : {"a", "b", "c"}) {
      last = journal.enqueue(Journal::encode_insert(
          "paths", id, Value::object({{"_id", id}, {"v", 1}})));
      ASSERT_GT(last, 0u);
    }
    ASSERT_TRUE(journal.sync(last).ok());
  }
  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(JournalTest, PipelineFramesCarryValidChecksums) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    journal.start_writer();
    const std::uint64_t seq = journal.enqueue(Journal::encode_insert(
        "paths", "a", Value::object({{"_id", "a"}})));
    ASSERT_TRUE(journal.sync(seq).ok());
  }
  std::ifstream in(path_);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(line.starts_with("crc32="));
}

TEST_F(JournalTest, CloseDrainsUnsyncedFrames) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    journal.start_writer();
    for (const char* id : {"a", "b"}) {
      ASSERT_GT(journal.enqueue(Journal::encode_insert(
                    "paths", id, Value::object({{"_id", id}}))),
                0u);
    }
    // No sync: the destructor must still commit everything queued.
  }
  int calls = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord&) {
                ++calls;
                return util::Status::success();
              }).ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(JournalTest, SyncTicketMakesRecordsDurableBeforeReturn) {
  // The sync-ticket contract under a crash: a file snapshot taken right
  // after sync() returns (= the bytes a kill would leave behind) holds
  // every synced record; only frames enqueued but not yet group-flushed
  // may be missing, and they form the tail, not holes.
  const std::string snapshot = path_ + ".crash";
  Journal journal;
  ASSERT_TRUE(journal.open(path_).ok());
  journal.start_writer();
  (void)journal.enqueue(
      Journal::encode_insert("paths", "a", Value::object({{"_id", "a"}})));
  const std::uint64_t synced = journal.enqueue(
      Journal::encode_insert("paths", "b", Value::object({{"_id", "b"}})));
  ASSERT_GT(synced, 0u);
  ASSERT_TRUE(journal.sync(synced).ok());
  (void)journal.enqueue(
      Journal::encode_insert("paths", "c", Value::object({{"_id", "c"}})));

  std::filesystem::copy_file(
      path_, snapshot,
      std::filesystem::copy_options::overwrite_existing);  // the crash point
  journal.close();

  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(snapshot, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  ASSERT_GE(ids.size(), 2u) << "synced records must be on disk";
  const std::vector<std::string> full{"a", "b", "c"};
  EXPECT_TRUE(std::equal(ids.begin(), ids.end(), full.begin()))
      << "a crash loses at most the unflushed tail, never earlier records";
  std::filesystem::remove(snapshot);
}

TEST_F(JournalTest, MultiThreadedWritersReplayCompleteAndPerThreadOrdered) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    journal.start_writer(/*queue_depth=*/32);  // small: exercise backpressure
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&journal, t] {
        std::uint64_t last = 0;
        for (int i = 0; i < kPerThread; ++i) {
          const std::string id =
              "t" + std::to_string(t) + "_" + std::to_string(i);
          last = journal.enqueue(Journal::encode_insert(
              "paths", id, Value::object({{"_id", id}, {"n", i}})));
          ASSERT_GT(last, 0u);
          if (i % 25 == 24) {
            ASSERT_TRUE(journal.sync(last).ok());
          }
        }
        ASSERT_TRUE(journal.sync(last).ok());
      });
    }
    for (auto& w : writers) w.join();
  }
  std::vector<int> next(kThreads, 0);
  std::size_t total = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ++total;
                const auto t = static_cast<std::size_t>(record.id[1] - '0');
                const int i = std::stoi(record.id.substr(3));
                EXPECT_EQ(i, next[t]) << "thread " << t << " out of order";
                ++next[t];
                return util::Status::success();
              }).ok());
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(JournalTest, EncodeHelpersMatchAppendedRecordFormat) {
  JournalRecord record = insert_record("a");
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    journal.start_writer();
    const std::uint64_t seq = journal.enqueue(
        Journal::encode_insert("paths", "a", record.document));
    ASSERT_TRUE(journal.sync(seq).ok());
    ASSERT_TRUE(journal.append(record).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  // Pipeline-encoded and append-encoded lines are byte-identical.
  std::ifstream in(path_);
  std::string pipeline_line;
  std::string append_line;
  ASSERT_TRUE(std::getline(in, pipeline_line));
  ASSERT_TRUE(std::getline(in, append_line));
  EXPECT_EQ(pipeline_line, append_line);
}

TEST_F(JournalTest, RecordFieldsSurviveRoundTrip) {
  JournalRecord record;
  record.op = "create_index";
  record.collection = "paths_stats";
  record.field = "path_id";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(record).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& replayed) {
                EXPECT_EQ(replayed.op, "create_index");
                EXPECT_EQ(replayed.collection, "paths_stats");
                EXPECT_EQ(replayed.field, "path_id");
                return util::Status::success();
              }).ok());
}

}  // namespace
}  // namespace upin::docdb
