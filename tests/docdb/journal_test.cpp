// Tests for docdb/journal: append, replay, corruption, rewrite.
#include "docdb/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace upin::docdb {
namespace {

using util::Value;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("journal_test_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  JournalRecord insert_record(const std::string& id) {
    JournalRecord record;
    record.op = "insert";
    record.collection = "paths";
    record.id = id;
    record.document = Value::object({{"_id", id}, {"v", 1}});
    return record;
  }

  std::string path_;
};

TEST_F(JournalTest, AppendAndReplayRoundTrip) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.append(insert_record("b")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
}

TEST_F(JournalTest, ReplayMissingFileIsEmptySuccess) {
  int calls = 0;
  ASSERT_TRUE(Journal::replay("/nonexistent/journal.jsonl",
                              [&](const JournalRecord&) {
                                ++calls;
                                return util::Status::success();
                              })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST_F(JournalTest, ReplaySkipsEmptyLines) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n\n";
  }
  int calls = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord&) {
                ++calls;
                return util::Status::success();
              }).ok());
  EXPECT_EQ(calls, 1);
}

TEST_F(JournalTest, ReplayStopsAtCorruptLine) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n";
    out << "{corrupt\n";
  }
  int calls = 0;
  const auto status = Journal::replay(path_, [&](const JournalRecord&) {
    ++calls;
    return util::Status::success();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_EQ(calls, 1) << "records before the corruption stand";
}

TEST_F(JournalTest, ReplayRejectsRecordsMissingOpOrColl) {
  {
    std::ofstream out(path_);
    out << R"({"id":"a"})" << "\n";
  }
  EXPECT_FALSE(Journal::replay(path_, [](const JournalRecord&) {
                 return util::Status::success();
               }).ok());
}

TEST_F(JournalTest, ReplayPropagatesCallbackError) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  const auto status = Journal::replay(path_, [](const JournalRecord&) {
    return util::Status(util::ErrorCode::kConflict, "boom");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kConflict);
}

TEST_F(JournalTest, AppendWithoutOpenFails) {
  Journal journal;
  EXPECT_FALSE(journal.append(insert_record("a")).ok());
  EXPECT_FALSE(journal.flush().ok());
}

TEST_F(JournalTest, RewriteReplacesContents) {
  Journal journal;
  ASSERT_TRUE(journal.open(path_).ok());
  ASSERT_TRUE(journal.append(insert_record("old")).ok());
  ASSERT_TRUE(journal.flush().ok());

  ASSERT_TRUE(journal.rewrite({insert_record("fresh")}).ok());

  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, std::vector<std::string>{"fresh"});
}

TEST_F(JournalTest, AppendsAfterRewriteLand) {
  Journal journal;
  ASSERT_TRUE(journal.open(path_).ok());
  ASSERT_TRUE(journal.rewrite({insert_record("a")}).ok());
  ASSERT_TRUE(journal.append(insert_record("b")).ok());
  ASSERT_TRUE(journal.flush().ok());
  int calls = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord&) {
                ++calls;
                return util::Status::success();
              }).ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(JournalTest, RecordFieldsSurviveRoundTrip) {
  JournalRecord record;
  record.op = "create_index";
  record.collection = "paths_stats";
  record.field = "path_id";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(record).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& replayed) {
                EXPECT_EQ(replayed.op, "create_index");
                EXPECT_EQ(replayed.collection, "paths_stats");
                EXPECT_EQ(replayed.field, "path_id");
                return util::Status::success();
              }).ok());
}

}  // namespace
}  // namespace upin::docdb
