// Tests for docdb/journal: append, replay, corruption, rewrite.
#include "docdb/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace upin::docdb {
namespace {

using util::Value;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("journal_test_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  JournalRecord insert_record(const std::string& id) {
    JournalRecord record;
    record.op = "insert";
    record.collection = "paths";
    record.id = id;
    record.document = Value::object({{"_id", id}, {"v", 1}});
    return record;
  }

  std::string path_;
};

TEST_F(JournalTest, AppendAndReplayRoundTrip) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.append(insert_record("b")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
}

TEST_F(JournalTest, ReplayMissingFileIsEmptySuccess) {
  int calls = 0;
  ASSERT_TRUE(Journal::replay("/nonexistent/journal.jsonl",
                              [&](const JournalRecord&) {
                                ++calls;
                                return util::Status::success();
                              })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST_F(JournalTest, ReplaySkipsEmptyLines) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n\n";
  }
  int calls = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord&) {
                ++calls;
                return util::Status::success();
              }).ok());
  EXPECT_EQ(calls, 1);
}

TEST_F(JournalTest, ReplayStopsAtCorruptLine) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n";
    out << "{corrupt\n";
  }
  int calls = 0;
  const auto status = Journal::replay(path_, [&](const JournalRecord&) {
    ++calls;
    return util::Status::success();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_EQ(calls, 1) << "records before the corruption stand";
}

TEST_F(JournalTest, ReplayRejectsRecordsMissingOpOrColl) {
  {
    std::ofstream out(path_);
    out << R"({"id":"a"})" << "\n";
  }
  EXPECT_FALSE(Journal::replay(path_, [](const JournalRecord&) {
                 return util::Status::success();
               }).ok());
}

TEST_F(JournalTest, ReplayPropagatesCallbackError) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  const auto status = Journal::replay(path_, [](const JournalRecord&) {
    return util::Status(util::ErrorCode::kConflict, "boom");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kConflict);
}

TEST_F(JournalTest, AppendWithoutOpenFails) {
  Journal journal;
  EXPECT_FALSE(journal.append(insert_record("a")).ok());
  EXPECT_FALSE(journal.flush().ok());
}

TEST_F(JournalTest, RewriteReplacesContents) {
  Journal journal;
  ASSERT_TRUE(journal.open(path_).ok());
  ASSERT_TRUE(journal.append(insert_record("old")).ok());
  ASSERT_TRUE(journal.flush().ok());

  ASSERT_TRUE(journal.rewrite({insert_record("fresh")}).ok());

  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, std::vector<std::string>{"fresh"});
}

TEST_F(JournalTest, AppendsAfterRewriteLand) {
  Journal journal;
  ASSERT_TRUE(journal.open(path_).ok());
  ASSERT_TRUE(journal.rewrite({insert_record("a")}).ok());
  ASSERT_TRUE(journal.append(insert_record("b")).ok());
  ASSERT_TRUE(journal.flush().ok());
  int calls = 0;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord&) {
                ++calls;
                return util::Status::success();
              }).ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(JournalTest, AppendedRecordsCarryChecksums) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::ifstream in(path_);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(line.starts_with("crc32="));
}

TEST_F(JournalTest, ChecksumMismatchMidFileIsHardError) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.append(insert_record("b")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  // Flip one payload byte of the first record (newline-terminated, so it
  // cannot be mistaken for a torn tail).
  std::string content;
  {
    std::ifstream in(path_, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  const std::size_t victim = content.find("\"a\"");
  ASSERT_NE(victim, std::string::npos);
  content[victim + 1] = 'z';
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }
  int calls = 0;
  ReplayReport report;
  const auto status = Journal::replay(
      path_,
      [&](const JournalRecord&) {
        ++calls;
        return util::Status::success();
      },
      &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_NE(status.error().message.find("checksum mismatch"),
            std::string::npos);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(calls, 0);
}

TEST_F(JournalTest, TornTailIsRecoveredAndReported) {
  std::size_t intact_bytes = 0;
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.append(insert_record("b")).ok());
    ASSERT_TRUE(journal.flush().ok());
    intact_bytes = std::filesystem::file_size(path_);
  }
  {
    // Simulate a crash mid-append: a partial frame with no newline.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "crc32=0123abcd {\"op\":\"ins";
  }
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [&](const JournalRecord& record) {
                    ids.push_back(record.id);
                    return util::Status::success();
                  },
                  &report)
                  .ok())
      << "a crash-truncated tail is recoverable, not fatal";
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.torn_tail_line, 3u);
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_EQ(report.valid_prefix_bytes, intact_bytes);
}

TEST_F(JournalTest, SameGarbageWithNewlineIsHardCorruption) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  {
    // The identical garbage, but newline-terminated: the writer claimed
    // the record was complete, so this is mid-file corruption.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "crc32=0123abcd {\"op\":\"ins\n";
  }
  ReplayReport report;
  const auto status = Journal::replay(
      path_, [](const JournalRecord&) { return util::Status::success(); },
      &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::ErrorCode::kParseError);
  EXPECT_FALSE(report.torn_tail);
}

TEST_F(JournalTest, TornTailOnUncheckummedGarbageToo) {
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("a")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "garbage-with-no-structure";
  }
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(path_,
                              [](const JournalRecord&) {
                                return util::Status::success();
                              },
                              &report)
                  .ok());
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.records_applied, 1u);
}

TEST_F(JournalTest, LegacyChecksumlessJournalsStillReplay) {
  {
    // A journal written before per-record checksums: bare JSON lines.
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"a","doc":{"_id":"a"}})" << "\n";
    out << R"({"op":"insert","coll":"c","id":"b","doc":{"_id":"b"}})" << "\n";
  }
  std::vector<std::string> ids;
  ReplayReport report;
  ASSERT_TRUE(Journal::replay(
                  path_,
                  [&](const JournalRecord& record) {
                    ids.push_back(record.id);
                    return util::Status::success();
                  },
                  &report)
                  .ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.records_applied, 2u);
}

TEST_F(JournalTest, MixedLegacyAndChecksummedLinesReplay) {
  {
    std::ofstream out(path_);
    out << R"({"op":"insert","coll":"c","id":"legacy","doc":{"_id":"l"}})"
        << "\n";
  }
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(insert_record("framed")).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  std::vector<std::string> ids;
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& record) {
                ids.push_back(record.id);
                return util::Status::success();
              }).ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"legacy", "framed"}));
}

TEST_F(JournalTest, RecordFieldsSurviveRoundTrip) {
  JournalRecord record;
  record.op = "create_index";
  record.collection = "paths_stats";
  record.field = "path_id";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path_).ok());
    ASSERT_TRUE(journal.append(record).ok());
    ASSERT_TRUE(journal.flush().ok());
  }
  ASSERT_TRUE(Journal::replay(path_, [&](const JournalRecord& replayed) {
                EXPECT_EQ(replayed.op, "create_index");
                EXPECT_EQ(replayed.collection, "paths_stats");
                EXPECT_EQ(replayed.field, "path_id");
                return util::Status::success();
              }).ok());
}

}  // namespace
}  // namespace upin::docdb
