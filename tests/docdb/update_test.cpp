// Tests for docdb/update: $set/$unset/$inc/$push/$pull/$rename + replace.
#include "docdb/update.hpp"

#include <gtest/gtest.h>

namespace upin::docdb {
namespace {

using util::ErrorCode;
using util::Value;

Document doc(const char* json) { return Value::parse(json).value(); }

Value update_of(const char* json) { return Value::parse(json).value(); }

TEST(Update, SetTopLevelField) {
  Document d = doc(R"({"_id": "a", "status": "alive"})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$set": {"status": "dead"}})")).ok());
  EXPECT_EQ(d.get("status")->as_string(), "dead");
}

TEST(Update, SetCreatesNestedPath) {
  Document d = doc(R"({"_id": "a"})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$set": {"bw.up_64": 4.2}})")).ok());
  EXPECT_DOUBLE_EQ(d.get_path("bw.up_64")->as_double(), 4.2);
}

TEST(Update, SetThroughNonObjectFails) {
  Document d = doc(R"({"_id": "a", "bw": 3})");
  const auto status = apply_update(d, update_of(R"({"$set": {"bw.up": 1}})"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(d.get("bw")->as_int(), 3) << "failed update must not mutate";
}

TEST(Update, IdIsImmutableUnderSet) {
  Document d = doc(R"({"_id": "a", "v": 1})");
  ASSERT_FALSE(apply_update(d, update_of(R"({"$set": {"_id": "b"}})")).ok());
  EXPECT_EQ(d.get("_id")->as_string(), "a");
}

TEST(Update, UnsetRemovesField) {
  Document d = doc(R"({"_id": "a", "x": 1, "y": 2})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$unset": {"x": ""}})")).ok());
  EXPECT_EQ(d.get("x"), nullptr);
  EXPECT_NE(d.get("y"), nullptr);
}

TEST(Update, UnsetMissingFieldIsNoop) {
  Document d = doc(R"({"_id": "a"})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$unset": {"zz": ""}})")).ok());
}

TEST(Update, IncIntegerAndDouble) {
  Document d = doc(R"({"_id": "a", "n": 5, "x": 1.5})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$inc": {"n": 2, "x": 0.25}})")).ok());
  EXPECT_EQ(d.get("n")->as_int(), 7);
  EXPECT_TRUE(d.get("n")->is_int()) << "int += int stays int";
  EXPECT_DOUBLE_EQ(d.get("x")->as_double(), 1.75);
}

TEST(Update, IncCreatesMissingField) {
  Document d = doc(R"({"_id": "a"})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$inc": {"count": 1}})")).ok());
  EXPECT_EQ(d.get("count")->as_int(), 1);
}

TEST(Update, IncRejectsNonNumericTargetOrDelta) {
  Document d = doc(R"({"_id": "a", "s": "text"})");
  EXPECT_FALSE(apply_update(d, update_of(R"({"$inc": {"s": 1}})")).ok());
  EXPECT_FALSE(apply_update(d, update_of(R"({"$inc": {"n": "x"}})")).ok());
}

TEST(Update, PushAppendsAndCreates) {
  Document d = doc(R"({"_id": "a", "tags": [1]})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$push": {"tags": 2, "fresh": "x"}})")).ok());
  EXPECT_EQ(d.get("tags")->as_array().size(), 2u);
  EXPECT_EQ(d.get("fresh")->as_array().size(), 1u);
}

TEST(Update, PushRejectsNonArrayTarget) {
  Document d = doc(R"({"_id": "a", "n": 5})");
  EXPECT_FALSE(apply_update(d, update_of(R"({"$push": {"n": 1}})")).ok());
}

TEST(Update, PullRemovesMatchingElements) {
  Document d = doc(R"({"_id": "a", "isds": [16, 17, 16]})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$pull": {"isds": 16}})")).ok());
  ASSERT_EQ(d.get("isds")->as_array().size(), 1u);
  EXPECT_EQ(d.get("isds")->as_array()[0].as_int(), 17);
}

TEST(Update, RenameMovesValue) {
  Document d = doc(R"({"_id": "a", "old": 9})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"$rename": {"old": "fresh"}})")).ok());
  EXPECT_EQ(d.get("old"), nullptr);
  EXPECT_EQ(d.get("fresh")->as_int(), 9);
}

TEST(Update, RenameRejectsIdEitherSide) {
  Document d = doc(R"({"_id": "a", "x": 1})");
  EXPECT_FALSE(apply_update(d, update_of(R"({"$rename": {"_id": "y"}})")).ok());
  EXPECT_FALSE(apply_update(d, update_of(R"({"$rename": {"x": "_id"}})")).ok());
}

TEST(Update, ReplacementKeepsId) {
  Document d = doc(R"({"_id": "a", "old_field": 1})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"fresh_field": 2})")).ok());
  EXPECT_EQ(d.get("_id")->as_string(), "a");
  EXPECT_EQ(d.get("old_field"), nullptr);
  EXPECT_EQ(d.get("fresh_field")->as_int(), 2);
}

TEST(Update, ReplacementWithMatchingIdAllowed) {
  Document d = doc(R"({"_id": "a", "v": 1})");
  ASSERT_TRUE(apply_update(d, update_of(R"({"_id": "a", "v": 2})")).ok());
  EXPECT_EQ(d.get("v")->as_int(), 2);
}

TEST(Update, ReplacementWithDifferentIdRejected) {
  Document d = doc(R"({"_id": "a", "v": 1})");
  EXPECT_FALSE(apply_update(d, update_of(R"({"_id": "b", "v": 2})")).ok());
  EXPECT_EQ(d.get("v")->as_int(), 1);
}

TEST(Update, UnknownOperatorRejectedAtomically) {
  Document d = doc(R"({"_id": "a", "v": 1})");
  const auto status =
      apply_update(d, update_of(R"({"$set": {"v": 9}, "$frob": {"v": 1}})"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(d.get("v")->as_int(), 1) << "partial operator list must not apply";
}

TEST(Update, NonObjectUpdateRejected) {
  Document d = doc(R"({"_id": "a"})");
  EXPECT_FALSE(apply_update(d, Value(3)).ok());
  EXPECT_FALSE(apply_update(d, update_of(R"({"$set": 3})")).ok());
}

TEST(Update, MultipleOperatorsComposeInOrder) {
  Document d = doc(R"({"_id": "a", "n": 1, "junk": true})");
  ASSERT_TRUE(apply_update(d, update_of(
      R"({"$inc": {"n": 1}, "$unset": {"junk": ""}, "$set": {"tag": "ok"}})")).ok());
  EXPECT_EQ(d.get("n")->as_int(), 2);
  EXPECT_EQ(d.get("junk"), nullptr);
  EXPECT_EQ(d.get("tag")->as_string(), "ok");
}

}  // namespace
}  // namespace upin::docdb
