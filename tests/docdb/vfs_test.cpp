// Tests for docdb/vfs: the real backend round-trips, and FaultVfs
// injects short writes, ENOSPC, fsync failures, crashes and rename
// rollback exactly as scripted.
#include "docdb/vfs.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace upin::docdb {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("vfs_test_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this))))
               .string();
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/file.dat";
  }
  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  std::string dir_;
  std::string path_;
};

// ----------------------------------------------------------- RealVfs

TEST_F(VfsTest, RealVfsAppendSyncRoundTrip) {
  Vfs& fs = Vfs::real();
  auto opened = fs.open_append(path_);
  ASSERT_TRUE(opened.ok());
  auto file = std::move(opened).value();
  ASSERT_TRUE(file->append("hello ").ok());
  ASSERT_TRUE(file->append("world").ok());
  ASSERT_TRUE(file->flush().ok());
  ASSERT_TRUE(file->sync().ok());
  file->close();
  EXPECT_FALSE(file->is_open());
  EXPECT_EQ(slurp(path_), "hello world");
}

TEST_F(VfsTest, RealVfsOpenTruncDiscardsContents) {
  Vfs& fs = Vfs::real();
  { std::ofstream out(path_); out << "old"; }
  auto opened = fs.open_trunc(path_);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value()->append("new").ok());
  opened.value()->close();
  EXPECT_EQ(slurp(path_), "new");
}

TEST_F(VfsTest, RealVfsRenameTruncateRemove) {
  Vfs& fs = Vfs::real();
  { std::ofstream out(path_); out << "abcdef"; }
  const std::string moved = dir_ + "/moved.dat";
  ASSERT_TRUE(fs.rename(path_, moved).ok());
  ASSERT_TRUE(fs.sync_parent_dir(moved).ok());
  EXPECT_FALSE(std::filesystem::exists(path_));
  ASSERT_TRUE(fs.truncate(moved, 3).ok());
  EXPECT_EQ(slurp(moved), "abc");
  ASSERT_TRUE(fs.remove(moved).ok());
  EXPECT_FALSE(std::filesystem::exists(moved));
}

TEST_F(VfsTest, RealVfsOpenFailsOnBadPath) {
  EXPECT_FALSE(Vfs::real().open_append("/nonexistent/dir/file").ok());
}

// ---------------------------------------------------------- FaultVfs

TEST_F(VfsTest, FaultVfsWritesThroughWhenFaultFree) {
  FaultVfs fs;
  auto opened = fs.open_append(path_);
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(opened.value()->append("payload").ok());
  ASSERT_TRUE(opened.value()->sync().ok());
  opened.value()->close();
  EXPECT_EQ(slurp(path_), "payload");
  EXPECT_FALSE(fs.crashed());
  EXPECT_EQ(fs.op_count(), 3u);  // open + append + sync
}

TEST_F(VfsTest, ShortWriteLandsHalfAndFails) {
  FaultVfs fs(FaultVfsConfig{.short_write_at = 1});
  auto file = std::move(fs.open_append(path_)).value();
  const auto status = file->append("12345678");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("short write"), std::string::npos);
  EXPECT_EQ(slurp(path_), "1234") << "a torn prefix, not a clean failure";
  // The next append is unaffected.
  ASSERT_TRUE(file->append("rest").ok());
}

TEST_F(VfsTest, DiskBudgetActsLikeEnospc) {
  FaultVfsConfig config;
  config.disk_budget_bytes = 10;
  FaultVfs fs(config);
  auto file = std::move(fs.open_append(path_)).value();
  ASSERT_TRUE(file->append("12345678").ok());  // 8 of 10
  const auto status = file->append("ABCDEFGH");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("no space"), std::string::npos);
  EXPECT_EQ(slurp(path_), "12345678AB") << "budget-truncated prefix lands";
}

TEST_F(VfsTest, FailedSyncLeavesDataVolatile) {
  FaultVfs fs(FaultVfsConfig{.fail_sync_at = 1});
  auto file = std::move(fs.open_append(path_)).value();
  ASSERT_TRUE(file->append("doomed").ok());
  ASSERT_FALSE(file->sync().ok());
  // The failed sync promoted nothing: at a crash only an opportunistic
  // writeback fraction of the tail survives (ops_ == 3 -> 3/4 here),
  // never the guaranteed whole.
  fs.crash_now();
  EXPECT_EQ(slurp(path_), "doom");
}

TEST_F(VfsTest, CrashKeepsDurablePrefixDropsUnsyncedTail) {
  FaultVfs fs;
  auto file = std::move(fs.open_append(path_)).value();
  ASSERT_TRUE(file->append("AAAA").ok());
  ASSERT_TRUE(file->sync().ok());
  ASSERT_TRUE(file->append("BBBB").ok());
  fs.crash_now();  // ops_ == 4 -> 0/4 of the unsynced tail survives
  EXPECT_EQ(slurp(path_), "AAAA");
  EXPECT_TRUE(fs.crashed());
  // Post-crash, every operation is refused.
  EXPECT_FALSE(file->append("x").ok());
  EXPECT_FALSE(fs.open_append(path_).ok());
  EXPECT_FALSE(fs.truncate(path_, 0).ok());
}

TEST_F(VfsTest, CrashCanLeaveTornFractionOfTail) {
  FaultVfs fs;
  auto file = std::move(fs.open_append(path_)).value();
  ASSERT_TRUE(file->append("AAAA").ok());
  ASSERT_TRUE(file->sync().ok());
  ASSERT_TRUE(file->append("BBBB").ok());
  ASSERT_TRUE(file->append("CCCC").ok());
  ASSERT_TRUE(file->append("DDDD").ok());
  fs.crash_now();  // ops_ == 6 -> 2/4 of the 12-byte tail survives
  EXPECT_EQ(slurp(path_), "AAAABBBBCC") << "a torn, prefix-shaped tail";
}

TEST_F(VfsTest, ScriptedCrashFiresAtExactOp) {
  FaultVfs fs(FaultVfsConfig{.crash_at_op = 2});
  auto file = std::move(fs.open_append(path_)).value();  // op 1
  const auto status = file->append("never");             // op 2: crash
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("crash"), std::string::npos);
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(std::filesystem::exists(path_))
      << "nothing was ever synced, so the file does not survive";
}

TEST_F(VfsTest, UnsyncedRenameRollsBackAtCrash) {
  FaultVfs fs;
  const std::string renamed = dir_ + "/renamed.dat";
  {
    auto file = std::move(fs.open_append(path_)).value();
    ASSERT_TRUE(file->append("contents").ok());
    ASSERT_TRUE(file->sync().ok());
  }
  ASSERT_TRUE(fs.rename(path_, renamed).ok());
  EXPECT_TRUE(std::filesystem::exists(renamed));
  fs.crash_now();  // parent dir never synced: the rename is lost
  EXPECT_EQ(slurp(path_), "contents") << "old directory entry resurfaces";
  EXPECT_FALSE(std::filesystem::exists(renamed));
}

TEST_F(VfsTest, DirSyncedRenameSurvivesCrash) {
  FaultVfs fs;
  const std::string renamed = dir_ + "/renamed.dat";
  {
    auto file = std::move(fs.open_append(path_)).value();
    ASSERT_TRUE(file->append("contents").ok());
    ASSERT_TRUE(file->sync().ok());
  }
  ASSERT_TRUE(fs.rename(path_, renamed).ok());
  ASSERT_TRUE(fs.sync_parent_dir(renamed).ok());
  fs.crash_now();
  EXPECT_EQ(slurp(renamed), "contents");
  EXPECT_FALSE(std::filesystem::exists(path_));
}

TEST_F(VfsTest, RenameOverExistingRestoresPriorTargetAtCrash) {
  FaultVfs fs;
  const std::string target = dir_ + "/target.dat";
  for (const auto& [p, text] : {std::pair{path_, std::string("fresh")},
                                std::pair{target, std::string("stale")}}) {
    auto file = std::move(fs.open_append(p)).value();
    ASSERT_TRUE(file->append(text).ok());
    ASSERT_TRUE(file->sync().ok());
  }
  ASSERT_TRUE(fs.rename(path_, target).ok());
  EXPECT_EQ(slurp(target), "fresh");
  fs.crash_now();
  EXPECT_EQ(slurp(target), "stale") << "the overwritten file comes back";
  EXPECT_EQ(slurp(path_), "fresh");
}

TEST_F(VfsTest, TruncationIsTracked) {
  FaultVfs fs;
  {
    auto file = std::move(fs.open_append(path_)).value();
    ASSERT_TRUE(file->append("123456").ok());
    ASSERT_TRUE(file->sync().ok());
  }
  ASSERT_TRUE(fs.truncate(path_, 3).ok());
  EXPECT_EQ(slurp(path_), "123");
}

TEST_F(VfsTest, PreExistingFilesAreAssumedDurable) {
  { std::ofstream out(path_); out << "inherited"; }
  FaultVfs fs;
  auto file = std::move(fs.open_append(path_)).value();
  ASSERT_TRUE(file->append("+tail").ok());
  ASSERT_TRUE(file->append("+more").ok());
  ASSERT_TRUE(file->append("+gone").ok());
  fs.crash_now();  // ops_ == 4 -> none of the unsynced tail survives
  EXPECT_EQ(slurp(path_), "inherited")
      << "contents from before the run survive; the unsynced tail does not";
}

}  // namespace
}  // namespace upin::docdb
