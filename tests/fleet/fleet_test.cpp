// Tests for the multi-tenant fleet scheduler: seed splitting, fairness
// lanes, the Healthy -> Degraded -> Quarantined ladder, watchdog trips,
// per-tenant failure containment, and the solo == in-fleet determinism
// contract the isolation gate builds on.
#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <set>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace upin::fleet {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() : env_(scion::scionlab_topology()) {}

  /// In-memory fleet, deterministic network, ladder off unless a test
  /// opts in.  Tests route fleet metrics into a local registry so runs
  /// stay independent of each other and of the process-wide registry.
  FleetConfig base_config() {
    FleetConfig config;
    config.seed = 42;
    config.net_config.server_error_prob = 0.0;
    config.suite.iterations = 2;
    config.error_budget = 0;
    config.watchdog_deadline_s = 0.0;
    config.metrics = &metrics_;
    return config;
  }

  static CampaignSpec spec_for(int id, int server) {
    CampaignSpec spec;
    spec.campaign_id = id;
    spec.server_ids = {server};
    return spec;
  }

  /// Every tenant-side counter that the determinism contract covers.
  static void expect_progress_equal(const measure::TestSuiteProgress& a,
                                    const measure::TestSuiteProgress& b) {
    EXPECT_EQ(a.path_tests_run, b.path_tests_run);
    EXPECT_EQ(a.stats_inserted, b.stats_inserted);
    EXPECT_EQ(a.batches_inserted, b.batches_inserted);
    EXPECT_EQ(a.ping_failures, b.ping_failures);
    EXPECT_EQ(a.bwtest_failures, b.bwtest_failures);
    EXPECT_EQ(a.errors.total(), b.errors.total());
    EXPECT_EQ(a.retry.retries, b.retry.retries);
    EXPECT_EQ(a.breaker_trips, b.breaker_trips);
    EXPECT_EQ(a.breaker_skips, b.breaker_skips);
    EXPECT_EQ(a.units_skipped, b.units_skipped);
    EXPECT_EQ(a.checkpoints_recorded, b.checkpoints_recorded);
    EXPECT_EQ(a.probes_shed, b.probes_shed);
  }

  scion::ScionlabEnv env_;
  obs::Registry metrics_;
};

TEST_F(FleetTest, CampaignSeedSplitsStableDecorrelatedStreams) {
  std::set<std::uint64_t> seeds;
  for (int id = 0; id < 64; ++id) {
    EXPECT_TRUE(seeds.insert(campaign_seed(42, id)).second)
        << "campaign " << id << " collided";
  }
  EXPECT_EQ(campaign_seed(42, 7), campaign_seed(42, 7))
      << "the split must be a pure function";
  EXPECT_NE(campaign_seed(42, 7), campaign_seed(43, 7))
      << "different fleet seeds give different tenant streams";
}

TEST_F(FleetTest, ShardFilenameEncodesCampaignId) {
  EXPECT_EQ(shard_filename(3), "campaign_3.jsonl");
}

TEST_F(FleetTest, RejectsEmptyAndDuplicateSpecLists) {
  FleetScheduler scheduler(env_, base_config());
  EXPECT_FALSE(scheduler.run({}).ok());
  const auto duplicate = scheduler.run({spec_for(1, 3), spec_for(1, 5)});
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.error().code, util::ErrorCode::kInvalidArgument);
}

TEST_F(FleetTest, RunsIndependentTenantsToCompletion) {
  FleetScheduler scheduler(env_, base_config());
  const auto result =
      scheduler.run({spec_for(0, 3), spec_for(1, 5), spec_for(2, 7)});
  ASSERT_TRUE(result.ok()) << result.error().message;
  ASSERT_EQ(result.value().campaigns.size(), 3u);
  EXPECT_EQ(result.value().quarantined, 0u);
  EXPECT_EQ(result.value().failed, 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    const CampaignStatus& status = result.value().campaigns[i];
    EXPECT_EQ(status.campaign_id, static_cast<int>(i)) << "spec order kept";
    EXPECT_EQ(status.state, TenantState::kHealthy);
    EXPECT_EQ(status.units_run, 2u) << "iterations x one destination";
    EXPECT_GT(status.progress.stats_inserted, 0u);
    EXPECT_EQ(status.progress.checkpoints_recorded, 2u);
    EXPECT_GE(status.credits_granted, status.units_run);
    EXPECT_TRUE(status.failure.ok());
  }
}

TEST_F(FleetTest, SoloRunMatchesInFleetRun) {
  // The isolation contract in its cheapest form: a tenant's campaign
  // counters in a multiplexed fleet equal its solo run's, exactly.
  const std::vector<CampaignSpec> specs = {spec_for(0, 3), spec_for(1, 5)};
  FleetScheduler scheduler(env_, base_config());
  const auto fleet = scheduler.run(specs);
  ASSERT_TRUE(fleet.ok());
  for (const CampaignSpec& spec : specs) {
    const auto solo = run_campaign_solo(env_, base_config(), spec);
    ASSERT_TRUE(solo.ok());
    const CampaignStatus& in_fleet =
        fleet.value().campaigns[static_cast<std::size_t>(spec.campaign_id)];
    EXPECT_EQ(solo.value().seed, in_fleet.seed);
    EXPECT_EQ(solo.value().state, in_fleet.state);
    expect_progress_equal(solo.value().progress, in_fleet.progress);
  }
}

TEST_F(FleetTest, FleetOutcomesAreDeterministicAcrossRuns) {
  const std::vector<CampaignSpec> specs = {spec_for(0, 3), spec_for(1, 5),
                                           spec_for(2, 7)};
  FleetConfig config = base_config();
  config.threads = 4;  // scheduling may differ; outcomes must not
  const auto first = FleetScheduler(env_, config).run(specs);
  const auto second = FleetScheduler(env_, config).run(specs);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(first.value().campaigns[i].state,
              second.value().campaigns[i].state);
    EXPECT_EQ(first.value().campaigns[i].units_run,
              second.value().campaigns[i].units_run);
    EXPECT_EQ(first.value().campaigns[i].error_score,
              second.value().campaigns[i].error_score);
    expect_progress_equal(first.value().campaigns[i].progress,
                          second.value().campaigns[i].progress);
  }
}

TEST_F(FleetTest, TenantBurningItsErrorBudgetIsQuarantined) {
  FleetConfig config = base_config();
  config.suite.iterations = 6;
  config.suite.retry.max_attempts = 2;
  config.error_budget = 6;
  config.shed_enabled = false;  // force the ladder straight to quarantine

  CampaignSpec faulty = spec_for(0, 3);
  simnet::NetworkConfig dark = config.net_config;
  dark.server_error_prob = 1.0;  // every bandwidth probe fails
  faulty.net_config = dark;

  const auto result =
      FleetScheduler(env_, config).run({faulty, spec_for(1, 5)});
  ASSERT_TRUE(result.ok());
  const CampaignStatus& bad = result.value().campaigns[0];
  const CampaignStatus& good = result.value().campaigns[1];
  EXPECT_EQ(bad.state, TenantState::kQuarantined);
  EXPECT_GE(bad.error_score, 6u) << "quarantine fires at the budget";
  EXPECT_LT(bad.units_run, 6u) << "the tenant was stopped early";
  EXPECT_EQ(result.value().quarantined, 1u);

  // Blast radius zero: the clean tenant neither saw the faults nor the
  // quarantine machinery.
  EXPECT_EQ(good.state, TenantState::kHealthy);
  const auto solo = run_campaign_solo(env_, config, spec_for(1, 5));
  ASSERT_TRUE(solo.ok());
  expect_progress_equal(good.progress, solo.value().progress);
}

TEST_F(FleetTest, DegradedTenantShedsBandwidthProbesAndStabilizes) {
  // Bandwidth probes fail hard, pings are fine: the tenant burns error
  // budget until the ladder degrades it to ping-only units — at which
  // point the failures stop and it finishes Degraded, not Quarantined.
  FleetConfig config = base_config();
  config.suite.iterations = 8;
  config.suite.retry.max_attempts = 2;
  config.error_budget = 12;  // degrade at 6, quarantine at 12

  CampaignSpec tenant = spec_for(0, 3);
  simnet::NetworkConfig dark = config.net_config;
  dark.server_error_prob = 1.0;
  tenant.net_config = dark;

  const auto result = FleetScheduler(env_, config).run({tenant});
  ASSERT_TRUE(result.ok());
  const CampaignStatus& status = result.value().campaigns[0];
  EXPECT_EQ(status.state, TenantState::kDegraded)
      << "shedding must stabilize the tenant below its budget, score="
      << status.error_score;
  EXPECT_GT(status.progress.probes_shed, 0u);
  EXPECT_EQ(status.units_run, 8u) << "a degraded tenant still completes";
  EXPECT_GT(status.progress.stats_inserted, 0u)
      << "ping-only units still produce samples";
  EXPECT_EQ(result.value().degraded, 1u);
}

TEST_F(FleetTest, PriorityZeroTenantsShedEarlier) {
  // Same faults, same budget: the priority-0 tenant degrades at a
  // quarter of the budget, the priority-1 tenant at half — so the
  // low-priority tenant sheds at least as many probes.
  FleetConfig config = base_config();
  config.suite.iterations = 8;
  config.suite.retry.max_attempts = 2;
  config.error_budget = 16;  // degrade thresholds: 4 (priority 0), 8 (priority 1)

  simnet::NetworkConfig dark = config.net_config;
  dark.server_error_prob = 1.0;
  CampaignSpec low = spec_for(0, 3);
  low.priority = 0;
  low.net_config = dark;
  CampaignSpec high = spec_for(1, 3);
  high.priority = 1;
  high.net_config = dark;

  const auto result = FleetScheduler(env_, config).run({low, high});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().campaigns[0].progress.probes_shed,
            result.value().campaigns[1].progress.probes_shed);
  EXPECT_GT(result.value().campaigns[0].progress.probes_shed, 0u);
}

TEST_F(FleetTest, WatchdogFlagsStalledTenantUnitsOnly) {
  // Healthy units against server 3 burn ~170 virtual seconds.  A tenant
  // whose responses are heavily garbled keeps (mostly) succeeding after
  // retries, so its breaker stays quiet while retry backoff stretches
  // each unit past 200 virtual seconds — a stalled tenant, not a dark
  // one.  The watchdog deadline sits between the two regimes.
  FleetConfig config = base_config();
  config.suite.iterations = 2;
  config.watchdog_deadline_s = 190.0;

  CampaignSpec stalled = spec_for(0, 3);
  simnet::NetworkConfig slow = config.net_config;
  simnet::FaultPlanConfig faults;
  faults.garble_prob = 0.4;
  faults.slow_per_hour = 6.0;
  slow.faults = faults;
  stalled.net_config = slow;

  const auto result =
      FleetScheduler(env_, config).run({stalled, spec_for(1, 3)});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().campaigns[0].watchdog_trips, 0u)
      << "retry backoff under garbling must trip the per-unit deadline";
  EXPECT_EQ(result.value().campaigns[1].watchdog_trips, 0u)
      << "healthy units stay under the deadline";
}

TEST_F(FleetTest, HardTenantFailureIsContained) {
  FleetConfig config = base_config();
  CampaignSpec crashing = spec_for(0, 3);
  crashing.crash_after_batches = 1;  // kDataLoss after the first commit

  const auto result =
      FleetScheduler(env_, config).run({crashing, spec_for(1, 5)});
  ASSERT_TRUE(result.ok()) << "a tenant crash must not fail the fleet";
  const CampaignStatus& crashed = result.value().campaigns[0];
  EXPECT_EQ(crashed.state, TenantState::kFailed);
  ASSERT_FALSE(crashed.failure.ok());
  EXPECT_EQ(crashed.failure.error().code, util::ErrorCode::kDataLoss);
  EXPECT_EQ(result.value().failed, 1u);

  const CampaignStatus& clean = result.value().campaigns[1];
  EXPECT_EQ(clean.state, TenantState::kHealthy);
  const auto solo = run_campaign_solo(env_, config, spec_for(1, 5));
  ASSERT_TRUE(solo.ok());
  expect_progress_equal(clean.progress, solo.value().progress);
}

TEST_F(FleetTest, FleetMetricsCarryTheCampaignLabel) {
  FleetConfig config = base_config();
  const auto result =
      FleetScheduler(env_, config).run({spec_for(0, 3), spec_for(1, 5)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(metrics_.counter("upin_fleet_units_total", "0").value(),
            result.value().campaigns[0].units_run);
  EXPECT_EQ(metrics_.counter("upin_fleet_units_total", "1").value(),
            result.value().campaigns[1].units_run);
  const std::string exposition = metrics_.to_prometheus();
  EXPECT_NE(exposition.find("upin_fleet_units_total{campaign=\"0\"}"),
            std::string::npos);
}

TEST_F(FleetTest, TracerAdoptsTenantTreesInCampaignOrder) {
  FleetConfig config = base_config();
  config.suite.iterations = 1;
  obs::SpanTracer tracer("fleet");
  config.tracer = &tracer;
  const auto result =
      FleetScheduler(env_, config).run({spec_for(0, 3), spec_for(1, 5)});
  ASSERT_TRUE(result.ok());
  const std::string render = tracer.render();
  const std::size_t first = render.find("campaign 0");
  const std::size_t second = render.find("campaign 1");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second) << "merge order is campaign order";
}

}  // namespace
}  // namespace upin::fleet
