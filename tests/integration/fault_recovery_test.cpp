// Integration tests for the fault-injection harness and crash-safe
// resume: a campaign under an aggressive FaultPlan still terminates with
// partial, fully-classified results; retry recovers transient faults;
// the breaker stops hammering dark servers; and a killed campaign,
// resumed from its checkpoints (even over a torn journal tail),
// reproduces the identical paths_stats document set.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "docdb/database.hpp"
#include "fleet/fleet.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"

namespace upin::measure {
namespace {

using util::Value;

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_path_ =
        (std::filesystem::temp_directory_path() /
         ("fault_recovery_" +
          std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".jsonl"))
            .string();
    std::filesystem::remove(journal_path_);
  }
  void TearDown() override { std::filesystem::remove(journal_path_); }

  static simnet::NetworkConfig reliable() {
    simnet::NetworkConfig config;
    config.server_error_prob = 0.0;
    return config;
  }

  static simnet::NetworkConfig faulty(const simnet::FaultPlanConfig& faults) {
    simnet::NetworkConfig config;
    config.server_error_prob = 0.0;
    config.faults = faults;
    return config;
  }

  /// All paths_stats documents as id -> serialized JSON.
  static std::map<std::string, std::string> stats_snapshot(
      docdb::Database& db) {
    std::map<std::string, std::string> snapshot;
    db.collection(kPathsStats).for_each([&](const docdb::Document& doc) {
      snapshot.emplace(std::string(docdb::document_id(doc).value_or("")),
                       doc.dump());
    });
    return snapshot;
  }

  FaultRecoveryTest() : env_(scion::scionlab_topology()) {}

  scion::ScionlabEnv env_;
  std::string journal_path_;
};

TEST_F(FaultRecoveryTest, AggressiveFaultsCampaignTerminatesClassified) {
  simnet::FaultPlanConfig faults;
  faults.garble_prob = 0.35;
  faults.server_down_per_hour = 8.0;
  faults.slow_per_hour = 8.0;
  apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", faulty(faults));
  docdb::Database db;
  TestSuiteConfig config;
  config.iterations = 2;
  config.server_ids = {{3}};
  config.retry.enabled = false;  // every injected fault is recorded
  TestSuite suite(host, db, config);
  ASSERT_TRUE(suite.run().ok()) << "faults must not abort the campaign";

  const TestSuiteProgress& p = suite.progress();
  // Partial results: some samples landed, some operations failed.
  EXPECT_GT(p.stats_inserted, 0u);
  EXPECT_GT(p.errors.total(), 0u);
  // Every operation failure is classified — the taxonomy reconciles
  // exactly with the per-operation failure counters.
  EXPECT_EQ(p.errors.total() - p.errors.storage,
            p.ping_failures + p.bwtest_failures);
  EXPECT_EQ(p.errors.storage, 0u);
  // This plan injects all three network fault classes.
  EXPECT_GT(p.errors.garbled, 0u);
  // Aggressive regime: at least 20 % of attempted operations failed.
  const std::size_t attempted = 3 * p.path_tests_run + p.ping_failures;
  EXPECT_GE(p.errors.total() * 5, attempted)
      << p.errors.total() << " failures of " << attempted << " operations";
}

TEST_F(FaultRecoveryTest, RetryRecoversTransientFaults) {
  simnet::FaultPlanConfig faults;
  faults.garble_prob = 0.25;  // redrawn per attempt: retries usually win
  TestSuiteConfig config;
  config.iterations = 2;
  config.server_ids = {{3}};

  apps::ScionHost host_off(env_, 42, env_.user_as, "10.0.8.1", faulty(faults));
  docdb::Database db_off;
  TestSuiteConfig no_retry = config;
  no_retry.retry.enabled = false;
  TestSuite without(host_off, db_off, no_retry);
  ASSERT_TRUE(without.run().ok());

  apps::ScionHost host_on(env_, 42, env_.user_as, "10.0.8.1", faulty(faults));
  docdb::Database db_on;
  TestSuite with(host_on, db_on, config);
  ASSERT_TRUE(with.run().ok());

  EXPECT_GT(with.progress().retry.retries, 0u);
  EXPECT_LT(with.progress().errors.total(), without.progress().errors.total())
      << "backoff-and-retry must recover transient garbles";
  EXPECT_GE(with.progress().stats_inserted, without.progress().stats_inserted);
}

TEST_F(FaultRecoveryTest, BreakerStopsHammeringDarkDestination) {
  simnet::NetworkConfig dark = reliable();
  dark.server_error_prob = 1.0;  // every bwtest fails, even after retries
  apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", dark);
  docdb::Database db;
  TestSuiteConfig config;
  config.iterations = 2;
  config.server_ids = {{3}};
  config.retry.max_attempts = 2;  // keep the virtual timeline short
  TestSuite suite(host, db, config);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_GE(suite.progress().breaker_trips, 1u);
  EXPECT_GT(suite.progress().breaker_skips, 0u)
      << "after tripping, remaining path tests are skipped";
  EXPECT_GT(suite.progress().stats_inserted, 0u)
      << "samples measured before the trip are kept";
}

TEST_F(FaultRecoveryTest, CheckpointsAreRecordedPerCompletedUnit) {
  auto opened = docdb::Database::open(journal_path_);
  ASSERT_TRUE(opened.ok());
  docdb::Database& db = *opened.value();
  apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", reliable());
  TestSuiteConfig config;
  config.iterations = 3;
  config.server_ids = {{3}};
  TestSuite suite(host, db, config);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_EQ(suite.progress().checkpoints_recorded, 3u);
  EXPECT_EQ(db.collection(kCampaignCheckpoints).size(), 3u);
  const auto doc = db.collection(kCampaignCheckpoints).find_by_id("ckpt_3_1");
  ASSERT_TRUE(doc.ok());
  const auto checkpoint = parse_checkpoint_document(doc.value());
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_EQ(checkpoint.value().server_id, 3);
  EXPECT_EQ(checkpoint.value().iteration, 1);
  EXPECT_GT(checkpoint.value().clock_end, util::SimTime::zero());
  EXPECT_GT(checkpoint.value().samples_stored, 0u);
}

TEST_F(FaultRecoveryTest, KillThenResumeReproducesIdenticalDocuments) {
  // Garbles (mostly recovered by retry) plus occasional slow-responder
  // windows: enough injected faults to exercise the recovery machinery
  // without tripping breakers so hard that units go empty.
  simnet::FaultPlanConfig faults;
  faults.garble_prob = 0.1;
  faults.slow_per_hour = 2.0;
  TestSuiteConfig config;
  config.iterations = 2;
  config.server_ids = {{3, 5}};

  // Reference: the same campaign, never interrupted (in-memory db).
  std::map<std::string, std::string> reference;
  {
    apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", faulty(faults));
    docdb::Database db;
    TestSuite suite(host, db, config);
    ASSERT_TRUE(suite.run().ok());
    reference = stats_snapshot(db);
    ASSERT_FALSE(reference.empty());
  }

  // Crashed run: killed after the third committed batch (mid-iteration).
  std::size_t stored_before_crash = 0;
  {
    auto opened = docdb::Database::open(journal_path_);
    ASSERT_TRUE(opened.ok());
    docdb::Database& db = *opened.value();
    apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", faulty(faults));
    TestSuiteConfig crashing = config;
    crashing.crash_after_batches = 3;
    TestSuite suite(host, db, crashing);
    const util::Status crashed = suite.run();
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.error().code, util::ErrorCode::kDataLoss);
    stored_before_crash = db.collection(kPathsStats).size();
    ASSERT_GT(stored_before_crash, 0u);
    ASSERT_LT(stored_before_crash, reference.size());
  }

  // The kill also tore the journal mid-append: leftover partial record.
  {
    std::ofstream out(journal_path_, std::ios::binary | std::ios::app);
    out << "crc32=0123abcd {\"op\":\"ins";
  }

  // Resume: fresh process, fresh host, fresh clock.
  {
    auto reopened = docdb::Database::open(journal_path_);
    ASSERT_TRUE(reopened.ok()) << "torn tail is recovered on open";
    docdb::Database& db = *reopened.value();
    EXPECT_EQ(db.collection(kPathsStats).size(), stored_before_crash)
        << "no committed samples lost to the torn tail";
    apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", faulty(faults));
    TestSuiteConfig resuming = config;
    resuming.skip_collection = true;
    resuming.resume = true;
    TestSuite suite(host, db, resuming);
    ASSERT_TRUE(suite.run().ok());
    EXPECT_EQ(suite.progress().units_skipped, 3u)
        << "exactly the checkpointed units are skipped";

    const std::map<std::string, std::string> resumed = stats_snapshot(db);
    ASSERT_EQ(resumed.size(), reference.size());
    for (const auto& [id, json] : reference) {
      const auto it = resumed.find(id);
      ASSERT_NE(it, resumed.end()) << "missing document " << id;
      EXPECT_EQ(it->second, json) << "document " << id << " diverged";
    }
  }
}

TEST_F(FaultRecoveryTest, FleetKillThenResumeReproducesIdenticalDocuments) {
  // Whole-fleet crash recovery: kill a three-tenant fleet mid-campaign
  // (every tenant at a different committed-batch boundary, tenant 0 with
  // a torn journal tail on top), resume the fleet over the same shard
  // directory, and require every tenant's paths_stats document set to
  // match an uninterrupted reference fleet exactly.
  namespace fs = std::filesystem;
  const std::string base =
      (fs::temp_directory_path() /
       ("fleet_resume_" + std::to_string(reinterpret_cast<std::uintptr_t>(this))))
          .string();
  fs::remove_all(base);

  fleet::FleetConfig config;
  config.seed = 42;
  config.net_config = reliable();
  config.suite.iterations = 3;
  config.error_budget = 0;  // ladder off: pure crash/resume mechanics
  config.watchdog_deadline_s = 0.0;
  config.threads = 3;
  std::vector<fleet::CampaignSpec> specs(3);
  for (int id = 0; id < 3; ++id) {
    specs[static_cast<std::size_t>(id)].campaign_id = id;
    specs[static_cast<std::size_t>(id)].server_ids = {3 + 2 * id};
  }

  const auto shard = [&](const char* dir, int id) {
    return (fs::path(base) / dir / fleet::shard_filename(id)).string();
  };
  const auto stats_in_shard = [&](const std::string& path) {
    auto opened = docdb::Database::open(path);
    EXPECT_TRUE(opened.ok()) << path;
    return opened.ok() ? stats_snapshot(*opened.value())
                       : std::map<std::string, std::string>{};
  };

  // Reference: the same fleet, never interrupted.
  {
    fleet::FleetConfig reference = config;
    reference.data_dir = base + "/ref";
    const auto result = fleet::FleetScheduler(env_, reference).run(specs);
    ASSERT_TRUE(result.ok());
    for (const auto& campaign : result.value().campaigns) {
      ASSERT_EQ(campaign.state, fleet::TenantState::kHealthy);
    }
  }

  // Crashed fleet: every tenant killed at its own batch boundary.
  const std::size_t crash_points[3] = {1, 2, 2};
  {
    fleet::FleetConfig crashing = config;
    crashing.data_dir = base + "/crash";
    std::vector<fleet::CampaignSpec> crash_specs = specs;
    for (std::size_t i = 0; i < 3; ++i) {
      crash_specs[i].crash_after_batches = crash_points[i];
    }
    const auto result = fleet::FleetScheduler(env_, crashing).run(crash_specs);
    ASSERT_TRUE(result.ok()) << "tenant crashes are contained, not fatal";
    EXPECT_EQ(result.value().failed, 3u);
    for (const auto& campaign : result.value().campaigns) {
      EXPECT_EQ(campaign.state, fleet::TenantState::kFailed);
      ASSERT_FALSE(campaign.failure.ok());
      EXPECT_EQ(campaign.failure.error().code, util::ErrorCode::kDataLoss);
    }
  }

  // The kill also tore tenant 0's journal mid-append.
  {
    std::ofstream out(shard("crash", 0), std::ios::binary | std::ios::app);
    out << "crc32=0123abcd {\"op\":\"ins";
  }

  // Resume the whole fleet over the crashed directory.
  {
    fleet::FleetConfig resuming = config;
    resuming.data_dir = base + "/crash";
    resuming.resume = true;
    const auto result = fleet::FleetScheduler(env_, resuming).run(specs);
    ASSERT_TRUE(result.ok());
    for (std::size_t i = 0; i < 3; ++i) {
      const fleet::CampaignStatus& campaign = result.value().campaigns[i];
      EXPECT_EQ(campaign.state, fleet::TenantState::kHealthy);
      EXPECT_EQ(campaign.units_resumed, crash_points[i])
          << "exactly the checkpointed units fast-forward";
      EXPECT_EQ(campaign.units_run + campaign.units_resumed, 3u);
    }
  }

  // Bit-identical recovery, per tenant: the resumed shards hold exactly
  // the reference document sets.
  for (int id = 0; id < 3; ++id) {
    const auto reference = stats_in_shard(shard("ref", id));
    const auto resumed = stats_in_shard(shard("crash", id));
    ASSERT_FALSE(reference.empty());
    ASSERT_EQ(resumed.size(), reference.size()) << "campaign " << id;
    for (const auto& [doc_id, json] : reference) {
      const auto it = resumed.find(doc_id);
      ASSERT_NE(it, resumed.end())
          << "campaign " << id << " missing document " << doc_id;
      EXPECT_EQ(it->second, json)
          << "campaign " << id << " document " << doc_id << " diverged";
    }
  }
  fs::remove_all(base);
}

TEST_F(FaultRecoveryTest, SyncTicketsPutCommittedBatchesOnDiskAtCrashTime) {
  // The group-commit durability contract: when insert_many (and the
  // checkpoint insert behind it) returns, its records are flushed.  A
  // file snapshot taken at the instant the injected crash fires — the
  // bytes a real kill would leave — must therefore replay to exactly the
  // committed in-memory state, not to some earlier group.
  const std::string snapshot = journal_path_ + ".crash";
  std::size_t stored_before_crash = 0;
  std::size_t checkpoints_before_crash = 0;
  {
    auto opened = docdb::Database::open(journal_path_);
    ASSERT_TRUE(opened.ok());
    docdb::Database& db = *opened.value();
    apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", reliable());
    TestSuiteConfig config;
    config.iterations = 2;
    config.server_ids = {{3, 5}};
    config.crash_after_batches = 3;
    TestSuite suite(host, db, config);
    ASSERT_FALSE(suite.run().ok());
    stored_before_crash = db.collection(kPathsStats).size();
    checkpoints_before_crash = db.collection(kCampaignCheckpoints).size();
    ASSERT_GT(stored_before_crash, 0u);
    // Snapshot the journal file while the database (and its writer
    // thread) is still alive — no destructor drain has happened yet.
    std::filesystem::copy_file(journal_path_, snapshot,
                               std::filesystem::copy_options::overwrite_existing);
  }

  auto recovered = docdb::Database::open(snapshot);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value()->collection(kPathsStats).size(),
            stored_before_crash)
      << "every batch whose insert_many returned must be on disk";
  EXPECT_EQ(recovered.value()->collection(kCampaignCheckpoints).size(),
            checkpoints_before_crash)
      << "checkpoints committed before the crash must be on disk";
  std::filesystem::remove(snapshot);
}

TEST_F(FaultRecoveryTest, ResumeWithoutCrashInjectionIsIdempotent) {
  // Run to completion, then resume with the same target: nothing re-runs.
  {
    auto opened = docdb::Database::open(journal_path_);
    ASSERT_TRUE(opened.ok());
    apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", reliable());
    TestSuiteConfig config;
    config.iterations = 2;
    config.server_ids = {{3}};
    TestSuite suite(host, *opened.value(), config);
    ASSERT_TRUE(suite.run().ok());
  }
  auto reopened = docdb::Database::open(journal_path_);
  ASSERT_TRUE(reopened.ok());
  docdb::Database& db = *reopened.value();
  const std::size_t stats = db.collection(kPathsStats).size();
  apps::ScionHost host(env_, 42, env_.user_as, "10.0.8.1", reliable());
  TestSuiteConfig config;
  config.iterations = 2;
  config.server_ids = {{3}};
  config.skip_collection = true;
  config.resume = true;
  TestSuite suite(host, db, config);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_EQ(suite.progress().path_tests_run, 0u);
  EXPECT_EQ(suite.progress().units_skipped, 2u);
  EXPECT_EQ(db.collection(kPathsStats).size(), stats);
}

}  // namespace
}  // namespace upin::measure
