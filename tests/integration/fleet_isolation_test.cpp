// The fleet chaos harness: network faults (simnet::FaultPlan) and
// storage faults (docdb::FaultVfs) are injected into exactly ONE tenant
// of a multiplexed fleet, and the blast radius must be zero — every
// other campaign's journal bytes, metrics and progress counters equal
// its solo run exactly.  This is the isolation acceptance gate: not
// "the other tenants still finish" but "the other tenants cannot tell".
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "docdb/vfs.hpp"
#include "fleet/fleet.hpp"

namespace upin::fleet {
namespace {

class FleetIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("fleet_iso_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this))))
                .string();
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  FleetIsolationTest() : env_(scion::scionlab_topology()) {}

  /// Deterministic fleet baseline: reliable network, short retry
  /// timelines, the full degradation ladder armed.
  FleetConfig base_config() {
    FleetConfig config;
    config.seed = 42;
    config.net_config.server_error_prob = 0.0;
    config.suite.iterations = 2;
    config.suite.retry.max_attempts = 2;
    config.error_budget = 8;
    config.watchdog_deadline_s = 0.0;
    config.threads = 3;
    return config;
  }

  static CampaignSpec spec_for(int id, int server) {
    CampaignSpec spec;
    spec.campaign_id = id;
    spec.server_ids = {server};
    return spec;
  }

  /// Aggressive single-tenant network chaos: garbled frames, dark
  /// server windows, slow-responder windows, and hard bandwidth-probe
  /// failures.
  static simnet::NetworkConfig chaos_network() {
    simnet::NetworkConfig config;
    config.server_error_prob = 1.0;
    simnet::FaultPlanConfig faults;
    faults.garble_prob = 0.35;
    faults.server_down_per_hour = 8.0;
    faults.slow_per_hour = 8.0;
    config.faults = faults;
    return config;
  }

  static std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static void expect_progress_equal(const measure::TestSuiteProgress& a,
                                    const measure::TestSuiteProgress& b) {
    EXPECT_EQ(a.path_tests_run, b.path_tests_run);
    EXPECT_EQ(a.stats_inserted, b.stats_inserted);
    EXPECT_EQ(a.batches_inserted, b.batches_inserted);
    EXPECT_EQ(a.errors.total(), b.errors.total());
    EXPECT_EQ(a.retry.retries, b.retry.retries);
    EXPECT_EQ(a.breaker_trips, b.breaker_trips);
    EXPECT_EQ(a.checkpoints_recorded, b.checkpoints_recorded);
    EXPECT_EQ(a.probes_shed, b.probes_shed);
  }

  std::string shard_in(const std::string& dir, int campaign_id) const {
    return (std::filesystem::path(base_) / dir / shard_filename(campaign_id))
        .string();
  }

  scion::ScionlabEnv env_;
  std::string base_;
};

TEST_F(FleetIsolationTest, BlastRadiusZeroUnderSingleTenantChaos) {
  // Tenant 0 gets the full chaos treatment — network faults AND storage
  // faults (a short write torn into its journal plus a failed fsync).
  // Tenants 1 and 2 run clean campaigns against disjoint servers.
  docdb::FaultVfsConfig storage_faults;
  storage_faults.short_write_at = 30;
  storage_faults.fail_sync_at = 3;
  docdb::FaultVfs fault_vfs(storage_faults);

  CampaignSpec chaotic = spec_for(0, 3);
  chaotic.net_config = chaos_network();
  chaotic.storage.vfs = &fault_vfs;
  chaotic.storage.salvage_mode = true;  // survive its own torn records
  const CampaignSpec clean_1 = spec_for(1, 5);
  const CampaignSpec clean_2 = spec_for(2, 7);

  const FleetConfig config = base_config();

  // Reference: the clean tenants alone in the process, bit for bit the
  // execution the fleet must reproduce for them.
  std::filesystem::create_directories(base_ + "/solo");
  std::vector<CampaignStatus> solo_status;
  for (const CampaignSpec& spec : {clean_1, clean_2}) {
    const auto solo =
        run_campaign_solo(env_, config, spec, shard_in("solo", spec.campaign_id));
    ASSERT_TRUE(solo.ok());
    ASSERT_EQ(solo.value().state, TenantState::kHealthy);
    solo_status.push_back(solo.value());
  }
  const std::string solo_bytes_1 = read_file(shard_in("solo", 1));
  const std::string solo_bytes_2 = read_file(shard_in("solo", 2));
  ASSERT_FALSE(solo_bytes_1.empty());

  FleetConfig fleet_config = config;
  fleet_config.data_dir = base_ + "/fleet";
  const auto fleet =
      FleetScheduler(env_, fleet_config).run({chaotic, clean_1, clean_2});
  ASSERT_TRUE(fleet.ok()) << "single-tenant chaos must not fail the fleet";

  // The chaotic tenant is contained: degraded, quarantined, or failed —
  // but stopped by its own budget, never by taking the fleet down.
  const CampaignStatus& chaos_status = fleet.value().campaigns[0];
  EXPECT_NE(chaos_status.state, TenantState::kHealthy);
  EXPECT_TRUE(chaos_status.error_score > 0 || !chaos_status.failure.ok())
      << "the chaos plan must actually have hurt tenant 0";
  EXPECT_GT(fault_vfs.op_count(), 0u) << "storage faults were exercised";

  // Blast radius zero: identical journal BYTES for the clean tenants.
  for (int id : {1, 2}) {
    const CampaignStatus& status =
        fleet.value().campaigns[static_cast<std::size_t>(id)];
    EXPECT_EQ(status.state, TenantState::kHealthy);
    EXPECT_EQ(read_file(shard_in("fleet", id)),
              id == 1 ? solo_bytes_1 : solo_bytes_2)
        << "campaign " << id << " shard diverged from its solo run";
    expect_progress_equal(status.progress,
                          solo_status[static_cast<std::size_t>(id - 1)].progress);
  }

  // Graceful degradation, storage edition: whatever the FaultVfs tore
  // into tenant 0's shard, a salvage-mode reopen recovers the committed
  // prefix rather than abandoning the dataset.
  docdb::DatabaseOptions salvage;
  salvage.salvage_mode = true;
  const auto reopened = docdb::Database::open(shard_in("fleet", 0), salvage);
  EXPECT_TRUE(reopened.ok()) << "chaotic tenant's shard must stay salvageable";
}

TEST_F(FleetIsolationTest, FleetShardBytesAreDeterministicAcrossRuns) {
  // Same fleet, run twice (multi-threaded, one tenant under network
  // chaos): every tenant's shard — including the chaotic one — must be
  // byte-identical across runs.  Worker scheduling and wall time must
  // leave no fingerprint in the data.
  CampaignSpec chaotic = spec_for(0, 3);
  chaotic.net_config = chaos_network();
  const std::vector<CampaignSpec> specs = {chaotic, spec_for(1, 5),
                                           spec_for(2, 7)};

  for (const char* dir : {"a", "b"}) {
    FleetConfig config = base_config();
    config.data_dir = (std::filesystem::path(base_) / dir).string();
    const auto result = FleetScheduler(env_, config).run(specs);
    ASSERT_TRUE(result.ok());
  }
  for (int id = 0; id < 3; ++id) {
    const std::string bytes_a = read_file(shard_in("a", id));
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, read_file(shard_in("b", id)))
        << "campaign " << id << " shard bytes differ between fleet runs";
  }
}

}  // namespace
}  // namespace upin::fleet
