// Integration tests: the full pipeline of the paper — testbed, campaign,
// database (durable + signed), selection — plus the figure-shape
// assertions the reproduction stands on.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "apps/host.hpp"
#include "docdb/aggregate.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "select/selector.hpp"

namespace upin {
namespace {

using measure::TestSuite;
using measure::TestSuiteConfig;
using scion::scionlab::kIreland;
using scion::scionlab::kOhio;
using scion::scionlab::kSingapore;

TEST(Integration, FullCampaignThenSelection) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  docdb::Database db;

  TestSuiteConfig config;
  config.iterations = 4;
  config.server_ids = {{1, 3}};  // Germany + Ireland
  TestSuite suite(host, db, config);
  ASSERT_TRUE(suite.run().ok());

  select::PathSelector selector(db, env.topology);
  for (const int server_id : {1, 3}) {
    select::UserRequest request;
    request.server_id = server_id;
    request.objective = select::Objective::kLowestLatency;
    const auto best = selector.best(request);
    ASSERT_TRUE(best.ok()) << "server " << server_id;
    EXPECT_EQ(best.value().summary.samples, 4u);
  }
}

TEST(Integration, DurableCampaignSurvivesReopen) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "upin_integration.jsonl")
          .string();
  std::filesystem::remove(path);

  const scion::ScionlabEnv env = scion::scionlab_topology();
  std::string best_before;
  {
    auto db = docdb::Database::open(path);
    ASSERT_TRUE(db.ok());
    apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
    TestSuiteConfig config;
    config.iterations = 2;
    config.server_ids = {{3}};
    TestSuite suite(host, *db.value(), config);
    ASSERT_TRUE(suite.run().ok());

    select::PathSelector selector(*db.value(), env.topology);
    select::UserRequest request;
    request.server_id = 3;
    best_before = selector.best(request).value().summary.path_id;
  }
  {
    auto reopened = docdb::Database::open(path);
    ASSERT_TRUE(reopened.ok());
    select::PathSelector selector(*reopened.value(), env.topology);
    select::UserRequest request;
    request.server_id = 3;
    const auto best = selector.best(request);
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(best.value().summary.path_id, best_before);
    EXPECT_EQ(best.value().summary.samples, 2u);
  }
  std::filesystem::remove(path);
}

TEST(Integration, SignedCampaignEndToEnd) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  docdb::Database db;
  scion::TrustStore trust;
  ASSERT_TRUE(
      trust.register_core(scion::IsdAsn(17, scion::make_asn(0, 0x1101))).ok());
  db.set_write_guard(trust.make_write_guard());

  TestSuiteConfig config;
  config.iterations = 2;
  config.server_ids = {{3}};
  TestSuite suite(host, db, config);
  suite.enable_signed_writes(trust);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_EQ(suite.progress().batches_rejected, 0u);
  EXPECT_EQ(suite.progress().batches_inserted, 2u);
  EXPECT_GT(db.collection(measure::kPathsStats).size(), 0u);
}

// ---- figure-shape assertions -----------------------------------------

class FigureShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new scion::ScionlabEnv(scion::scionlab_topology());
    host_ = new apps::ScionHost(*env_, 42, env_->user_as, "10.0.8.1");
    db_ = new docdb::Database();
    TestSuiteConfig config;
    config.iterations = 8;
    config.server_ids = {{1, 3}};  // Germany (bw), Ireland (latency)
    TestSuite suite(*host_, *db_, config);
    ASSERT_TRUE(suite.run().ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete host_;
    delete env_;
    db_ = nullptr;
    host_ = nullptr;
    env_ = nullptr;
  }

  static std::vector<select::PathSummary> summaries(int server_id) {
    select::PathSelector selector(*db_, env_->topology);
    auto result = selector.summarize(server_id);
    EXPECT_TRUE(result.ok());
    if (!result.ok()) return {};
    return std::move(result).value();
  }

  static scion::ScionlabEnv* env_;
  static apps::ScionHost* host_;
  static docdb::Database* db_;
};

scion::ScionlabEnv* FigureShapes::env_ = nullptr;
apps::ScionHost* FigureShapes::host_ = nullptr;
docdb::Database* FigureShapes::db_ = nullptr;

TEST_F(FigureShapes, Fig4ReachabilityHeadlines) {
  const scion::Beaconing& beacons = host_->beaconing();
  double hop_sum = 0.0;
  std::size_t reachable = 0, within_six = 0;
  for (const scion::SnetAddress& server : env_->servers) {
    const auto paths = beacons.paths(env_->user_as, server.ia);
    if (paths.empty()) continue;
    ++reachable;
    hop_sum += static_cast<double>(paths.front().hop_count());
    if (paths.front().hop_count() <= 6) ++within_six;
  }
  EXPECT_EQ(reachable, 21u);  // paper: 21 reachable destinations
  const double avg = hop_sum / static_cast<double>(reachable);
  EXPECT_NEAR(avg, 5.66, 0.4);  // paper: 5.66
  const double pct = 100.0 * static_cast<double>(within_six) /
                     static_cast<double>(reachable);
  EXPECT_NEAR(pct, 70.0, 10.0);  // paper: ~70%
}

TEST_F(FigureShapes, Fig5ThreeLatencyLayers) {
  double europe = 0, ohio = 0, singapore = 0;
  for (const select::PathSummary& s : summaries(3)) {
    if (!s.latency_ms.has_value()) continue;
    const scion::IsdAsn second_last = s.hops[s.hops.size() - 2];
    double& slot = second_last == kOhio        ? ohio
                   : second_last == kSingapore ? singapore
                                               : europe;
    if (slot == 0) slot = s.latency_ms->median;
  }
  ASSERT_GT(europe, 0);
  ASSERT_GT(ohio, 0);
  ASSERT_GT(singapore, 0);
  EXPECT_GT(ohio, 2.0 * europe) << "layer 2 clearly above layer 1";
  EXPECT_GT(singapore, 1.3 * ohio) << "layer 3 clearly above layer 2";
}

TEST_F(FigureShapes, Fig5GeographyBeatsHopCount) {
  // A min-hop-count path via Europe is *faster* than equal-hop paths via
  // Ohio: hop count does not explain latency (paper §6.1).
  std::optional<double> europe_6hop, ohio_6hop;
  for (const select::PathSummary& s : summaries(3)) {
    if (!s.latency_ms.has_value() || s.hop_count != 6) continue;
    const scion::IsdAsn second_last = s.hops[s.hops.size() - 2];
    if (second_last == kOhio && !ohio_6hop.has_value()) {
      ohio_6hop = s.latency_ms->median;
    }
    if (second_last != kOhio && second_last != kSingapore &&
        !europe_6hop.has_value()) {
      europe_6hop = s.latency_ms->median;
    }
  }
  ASSERT_TRUE(europe_6hop.has_value());
  ASSERT_TRUE(ohio_6hop.has_value());
  EXPECT_LT(*europe_6hop, *ohio_6hop / 2.0);
}

TEST_F(FigureShapes, Fig6ExclusionCompactsTheSpread) {
  // Within the 6-hop group, the spread of per-path medians collapses
  // once Singapore/Ohio members are excluded.
  std::vector<double> all, without_detours;
  for (const select::PathSummary& s : summaries(3)) {
    if (!s.latency_ms.has_value() || s.hop_count != 6) continue;
    all.push_back(s.latency_ms->median);
    const bool detour =
        std::any_of(s.hops.begin(), s.hops.end(), [](scion::IsdAsn ia) {
          return ia == kOhio || ia == kSingapore;
        });
    if (!detour) without_detours.push_back(s.latency_ms->median);
  }
  ASSERT_GE(all.size(), 3u);
  ASSERT_GE(without_detours.size(), 2u);
  const auto spread = [](const std::vector<double>& xs) {
    return *std::max_element(xs.begin(), xs.end()) -
           *std::min_element(xs.begin(), xs.end());
  };
  EXPECT_LT(spread(without_detours), spread(all) / 10.0);
}

TEST_F(FigureShapes, Fig7OrderingAt12Mbps) {
  for (const select::PathSummary& s : summaries(1)) {
    ASSERT_TRUE(s.mean_bw_up_64.has_value());
    EXPECT_LT(*s.mean_bw_up_64, *s.mean_bw_up_mtu)
        << "64B below MTU at 12 Mbps (paper Fig 7)";
    EXPECT_LT(*s.mean_bw_down_64, *s.mean_bw_down_mtu);
    EXPECT_LT(*s.mean_bw_up_mtu, *s.mean_bw_down_mtu)
        << "upstream below downstream (paper §6.2)";
  }
}

TEST_F(FigureShapes, Fig8InversionAt150Mbps) {
  // Separate campaign at the saturating target.
  docdb::Database db150;
  apps::ScionHost host150(*env_, 42, env_->user_as, "10.0.8.1");
  TestSuiteConfig config;
  config.iterations = 4;
  config.server_ids = {{1}};
  config.bw_target_mbps = 150.0;
  TestSuite suite(host150, db150, config);
  ASSERT_TRUE(suite.run().ok());

  select::PathSelector selector(db150, env_->topology);
  const auto result = selector.summarize(1);
  ASSERT_TRUE(result.ok());
  for (const select::PathSummary& s : result.value()) {
    EXPECT_GT(*s.mean_bw_up_64, *s.mean_bw_up_mtu)
        << "inversion upstream (paper Fig 8)";
    EXPECT_GT(*s.mean_bw_down_64, *s.mean_bw_down_mtu)
        << "inversion downstream (paper Fig 8)";
  }
}

TEST_F(FigureShapes, AggregationPipelineAgreesWithSelector) {
  // The Fig 6 grouping expressed as a docdb aggregation must agree with
  // the C++-side aggregation the selector performs.
  const auto pipeline = util::Value::parse(R"([
    {"$match": {"server_id": 3}},
    {"$group": {"_id": "$hop_count",
                "avg_latency": {"$avg": "$latency_ms"},
                "n": {"$count": {}}}},
    {"$sort": {"_id": 1}}
  ])");
  ASSERT_TRUE(pipeline.ok());
  const auto groups = docdb::aggregate(
      db_->collection(measure::kPathsStats), pipeline.value());
  ASSERT_TRUE(groups.ok());
  ASSERT_FALSE(groups.value().empty());

  // Manual reference from the selector's summaries (weighted by sample
  // counts per path).
  std::map<std::int64_t, std::pair<double, std::size_t>> reference;
  db_->collection(measure::kPathsStats)
      .for_each([&](const docdb::Document& doc) {
        if (doc.get("server_id")->as_int() != 3) return;
        const util::Value* latency = doc.get("latency_ms");
        if (latency == nullptr) return;
        auto& slot = reference[doc.get("hop_count")->as_int()];
        slot.first += latency->as_double();
        ++slot.second;
      });
  for (const docdb::Document& group : groups.value()) {
    const std::int64_t hops = group.get("_id")->as_int();
    ASSERT_TRUE(reference.contains(hops));
    const auto& [sum, count] = reference.at(hops);
    EXPECT_NEAR(group.get("avg_latency")->as_double(),
                sum / static_cast<double>(count), 1e-9);
  }
}

TEST_F(FigureShapes, Fig9LossMostlyZero) {
  // Per-measurement, not per-path: "the majority of paths exhibits a loss
  // ratio of 0%, with a few instances occasionally reaching almost the
  // 10% mark" (§6.3).
  std::size_t zero_loss = 0, moderate = 0, total = 0;
  db_->collection(measure::kPathsStats)
      .for_each([&](const docdb::Document& doc) {
        const double loss = doc.get("loss_pct")->as_double();
        ++total;
        if (loss < 1.0) ++zero_loss;
        if (loss >= 1.0 && loss <= 40.0) ++moderate;
      });
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(zero_loss) / static_cast<double>(total), 0.7);
  EXPECT_GT(moderate, 0u) << "occasional visible loss readings exist";
}

}  // namespace
}  // namespace upin
