// Integration: the telemetry determinism contract.
//
// The acceptance invariant for the observability layer: a fixed-seed
// parallel survey yields a bit-identical virtual-clock span tree and
// identical counter values on every run.  Wall-clock metrics (journal
// flush latency, worker wall time) and gauges are explicitly outside the
// contract, so the comparison covers counters and span renders only.
#include <gtest/gtest.h>

#include <string>

#include "measure/parallel_survey.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "scion/scionlab.hpp"

namespace upin::measure {
namespace {

struct RunArtifacts {
  std::string span_render;
  std::string counters_json;
};

RunArtifacts run_once() {
  // Counters are process-global and monotone; measuring one run means
  // zeroing the registry first (registrations survive).
  obs::Registry::global().reset_values();
  const scion::ScionlabEnv env = scion::scionlab_topology();
  docdb::Database db;  // in-memory: no wall-clock journal activity
  obs::SpanTracer tracer("campaign");
  ParallelSurveyConfig config;
  config.suite.iterations = 2;
  config.suite.server_ids = {{1, 3, 5}};
  config.threads = 3;
  config.tracer = &tracer;
  const auto result = run_parallel_survey(env, db, config);
  EXPECT_TRUE(result.ok());
  RunArtifacts artifacts;
  artifacts.span_render = tracer.render();
  const util::Value snapshot = obs::Registry::global().snapshot();
  const util::Value* counters = snapshot.get("counters");
  if (counters != nullptr) artifacts.counters_json = counters->dump();
  return artifacts;
}

TEST(TelemetryDeterminism, FixedSeedRunsProduceIdenticalArtifacts) {
  const RunArtifacts first = run_once();
  const RunArtifacts second = run_once();

  // The span tree actually recorded the campaign hierarchy...
  EXPECT_NE(first.span_render.find("destination 1"), std::string::npos);
  EXPECT_NE(first.span_render.find("destination 5"), std::string::npos);
  EXPECT_NE(first.span_render.find("ping"), std::string::npos);
  EXPECT_NE(first.counters_json.find("upin_measure_pings_total"),
            std::string::npos);

  // ...and both artifacts are bit-identical across runs.
  EXPECT_EQ(first.span_render, second.span_render);
  EXPECT_EQ(first.counters_json, second.counters_json);
}

TEST(TelemetryDeterminism, AdoptionOrderFollowsDestinationsNotScheduling) {
  obs::Registry::global().reset_values();
  const scion::ScionlabEnv env = scion::scionlab_topology();
  docdb::Database db;
  obs::SpanTracer tracer("campaign");
  ParallelSurveyConfig config;
  config.suite.iterations = 1;
  config.suite.server_ids = {{2, 4}};
  config.threads = 2;
  config.tracer = &tracer;
  ASSERT_TRUE(run_parallel_survey(env, db, config).ok());
  const obs::Span& root = tracer.root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "destination 2");
  EXPECT_EQ(root.children[1]->name, "destination 4");
}

}  // namespace
}  // namespace upin::measure
