// Tests for measure/parallel_survey: scale-out correctness (paper §4.1.1).
#include "measure/parallel_survey.hpp"

#include <gtest/gtest.h>

#include "apps/host.hpp"
#include "select/selector.hpp"

namespace upin::measure {
namespace {

TEST(ParallelSurvey, CoversEveryRequestedDestination) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  docdb::Database db;
  ParallelSurveyConfig config;
  config.suite.iterations = 2;
  config.suite.server_ids = {{1, 2, 3, 4, 5}};
  config.threads = 4;
  const auto result = run_parallel_survey(env, db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().destinations_failed, 0u);
  EXPECT_EQ(result.value().progress.destinations_visited, 5u);
  EXPECT_EQ(result.value().progress.batches_inserted, 10u);  // 5 dests x 2
  for (int server_id = 1; server_id <= 5; ++server_id) {
    util::JsonObject query;
    query.set("server_id", util::Value(server_id));
    const auto filter =
        docdb::Filter::compile(util::Value(std::move(query))).value();
    EXPECT_GT(db.collection(kPathsStats).count(filter), 0u)
        << "server " << server_id;
  }
}

TEST(ParallelSurvey, DefaultsToAllServers) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  docdb::Database db;
  ParallelSurveyConfig config;
  config.suite.iterations = 1;
  config.threads = 8;
  const auto result = run_parallel_survey(env, db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().progress.destinations_visited, 21u);
  EXPECT_EQ(db.collection(kAvailableServers).size(), 21u);
}

TEST(ParallelSurvey, MatchesSequentialPerDestinationResults) {
  const scion::ScionlabEnv env = scion::scionlab_topology();

  // Sequential single-destination campaign.
  docdb::Database sequential_db;
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  TestSuiteConfig seq_config;
  seq_config.iterations = 3;
  seq_config.server_ids = {{3}};
  TestSuite suite(host, sequential_db, seq_config);
  ASSERT_TRUE(suite.run().ok());

  // Parallel survey covering destination 3 among others.
  docdb::Database parallel_db;
  ParallelSurveyConfig par_config;
  par_config.suite.iterations = 3;
  par_config.suite.server_ids = {{1, 3, 5}};
  par_config.threads = 3;
  ASSERT_TRUE(run_parallel_survey(env, parallel_db, par_config).ok());

  // Destination 3's documents must be identical (same seed, own replica
  // timeline starting at zero).
  util::JsonObject query;
  query.set("server_id", util::Value(3));
  const auto filter =
      docdb::Filter::compile(util::Value(std::move(query))).value();
  docdb::FindOptions by_id;
  by_id.sort_by = "_id";
  const auto sequential_docs =
      sequential_db.collection(kPathsStats).find(filter, by_id);
  const auto parallel_docs =
      parallel_db.collection(kPathsStats).find(filter, by_id);
  ASSERT_EQ(sequential_docs.size(), parallel_docs.size());
  for (std::size_t i = 0; i < sequential_docs.size(); ++i) {
    EXPECT_EQ(sequential_docs[i], parallel_docs[i]);
  }
}

TEST(ParallelSurvey, RejectsEmptySelection) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  docdb::Database db;
  ParallelSurveyConfig config;
  config.suite.server_ids = std::vector<int>{};
  EXPECT_FALSE(run_parallel_survey(env, db, config).ok());
}

TEST(ParallelSurvey, SingleThreadStillWorks) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  docdb::Database db;
  ParallelSurveyConfig config;
  config.suite.iterations = 1;
  config.suite.server_ids = {{1, 3}};
  config.threads = 1;
  const auto result = run_parallel_survey(env, db, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().progress.destinations_visited, 2u);
}

}  // namespace
}  // namespace upin::measure
