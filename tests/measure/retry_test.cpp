// Tests for measure/retry: fault taxonomy, backoff schedule, the
// run_with_retry driver on the virtual clock, and the circuit breaker's
// three-state lifecycle (including checkpoint restore).
#include "measure/retry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/clock.hpp"

namespace upin::measure {
namespace {

using util::ErrorCode;
using util::Result;
using util::sim_seconds;
using util::SimTime;
using util::VirtualClock;

TEST(ClassifyFault, CoversEveryErrorCode) {
  EXPECT_EQ(classify_fault(ErrorCode::kTimeout), FaultKind::kTimeout);
  EXPECT_EQ(classify_fault(ErrorCode::kUnreachable), FaultKind::kUnreachable);
  EXPECT_EQ(classify_fault(ErrorCode::kNotFound), FaultKind::kUnreachable);
  EXPECT_EQ(classify_fault(ErrorCode::kBadResponse), FaultKind::kGarbled);
  EXPECT_EQ(classify_fault(ErrorCode::kDataLoss), FaultKind::kStorage);
  EXPECT_EQ(classify_fault(ErrorCode::kConflict), FaultKind::kStorage);
  EXPECT_EQ(classify_fault(ErrorCode::kPermissionDenied), FaultKind::kStorage);
  EXPECT_EQ(classify_fault(ErrorCode::kRevoked), FaultKind::kRevoked);
  EXPECT_EQ(classify_fault(ErrorCode::kExpired), FaultKind::kExpired);
  EXPECT_EQ(classify_fault(ErrorCode::kInvalidArgument), FaultKind::kOther);
  EXPECT_EQ(classify_fault(ErrorCode::kParseError), FaultKind::kOther);
  EXPECT_EQ(classify_fault(ErrorCode::kInternal), FaultKind::kOther);
}

TEST(FaultTaxonomyCounters, RecordAndTotal) {
  FaultTaxonomy taxonomy;
  EXPECT_EQ(taxonomy.total(), 0u);
  taxonomy.record(FaultKind::kTimeout);
  taxonomy.record(FaultKind::kTimeout);
  taxonomy.record(FaultKind::kUnreachable);
  taxonomy.record(FaultKind::kGarbled);
  taxonomy.record(FaultKind::kStorage);
  taxonomy.record(FaultKind::kRevoked);
  taxonomy.record(FaultKind::kRevoked);
  taxonomy.record(FaultKind::kExpired);
  taxonomy.record(FaultKind::kOther);
  EXPECT_EQ(taxonomy.timeouts, 2u);
  EXPECT_EQ(taxonomy.unreachable, 1u);
  EXPECT_EQ(taxonomy.garbled, 1u);
  EXPECT_EQ(taxonomy.storage, 1u);
  EXPECT_EQ(taxonomy.revoked, 2u);
  EXPECT_EQ(taxonomy.expired, 1u);
  EXPECT_EQ(taxonomy.other, 1u);
  EXPECT_EQ(taxonomy.total(), 9u);
}

TEST(FaultKindNames, AreStable) {
  EXPECT_STREQ(to_string(FaultKind::kTimeout), "timeout");
  EXPECT_STREQ(to_string(FaultKind::kUnreachable), "unreachable");
  EXPECT_STREQ(to_string(FaultKind::kGarbled), "garbled");
  EXPECT_STREQ(to_string(FaultKind::kStorage), "storage");
  EXPECT_STREQ(to_string(FaultKind::kRevoked), "revoked");
  EXPECT_STREQ(to_string(FaultKind::kExpired), "expired");
  EXPECT_STREQ(to_string(FaultKind::kOther), "other");
}

TEST(RetryPolicyBackoff, GrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 3.0;
  policy.jitter_frac = 0.0;
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1, rng), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2, rng), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3, rng), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(4, rng), 3.0) << "clamped to max";
  EXPECT_DOUBLE_EQ(policy.backoff_s(10, rng), 3.0);
}

TEST(RetryPolicyBackoff, JitterStaysWithinBand) {
  RetryPolicy policy;
  policy.initial_backoff_s = 1.0;
  policy.jitter_frac = 0.2;
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double backoff = policy.backoff_s(1, rng);
    EXPECT_GE(backoff, 0.8);
    EXPECT_LE(backoff, 1.2);
  }
}

TEST(RetryPolicyBackoff, RetryableOnlyForTransientFaults) {
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::kTimeout));
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::kUnreachable));
  EXPECT_TRUE(RetryPolicy::retryable(ErrorCode::kBadResponse));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kPermissionDenied));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kParseError));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kDataLoss));
  // Control-plane verdicts are authoritative: failing over beats waiting.
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kRevoked));
  EXPECT_FALSE(RetryPolicy::retryable(ErrorCode::kExpired));
}

TEST(RetryPolicyBackoff, FullJitterSpansZeroToBase) {
  RetryPolicy policy;
  policy.initial_backoff_s = 4.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 8.0;
  policy.jitter_mode = BackoffJitter::kFull;
  util::Rng rng(11);
  double lo = 1e9, hi = -1e9, sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double backoff = policy.backoff_s(1, rng);
    EXPECT_GE(backoff, 0.0);
    EXPECT_LE(backoff, 4.0);
    lo = std::min(lo, backoff);
    hi = std::max(hi, backoff);
    sum += backoff;
  }
  // Full jitter actually uses the whole band, unlike the scaled mode.
  EXPECT_LT(lo, 0.5) << "draws should reach near zero";
  EXPECT_GT(hi, 3.5) << "draws should reach near the base backoff";
  EXPECT_NEAR(sum / 1000.0, 2.0, 0.3) << "mean ~ base/2";
}

TEST(RetryPolicyBackoff, FullJitterStillClampsToMaxAndIsSeeded) {
  RetryPolicy policy;
  policy.initial_backoff_s = 4.0;
  policy.backoff_multiplier = 4.0;
  policy.max_backoff_s = 6.0;
  policy.jitter_mode = BackoffJitter::kFull;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    util::Rng rng(3);
    EXPECT_LE(policy.backoff_s(attempt, rng), 6.0);
  }
  // Same seed, same draw: the schedule is a pure function of the rng.
  util::Rng rng_a(42), rng_b(42);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2, rng_a), policy.backoff_s(2, rng_b));
}

TEST(RunWithRetry, SuccessOnFirstAttemptLeavesClockAlone) {
  RetryPolicy policy;
  VirtualClock clock;
  RetryStats stats;
  int calls = 0;
  const Result<int> result = run_with_retry<int>(
      policy, clock, "op", stats, [&]() -> Result<int> {
        ++calls;
        return 7;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(RunWithRetry, TransientFailureRetriesAndAdvancesClock) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.jitter_frac = 0.0;
  VirtualClock clock;
  RetryStats stats;
  int calls = 0;
  const Result<int> result = run_with_retry<int>(
      policy, clock, "op", stats, [&]() -> Result<int> {
        ++calls;
        if (calls < 3) {
          return util::Error{ErrorCode::kTimeout, "transient"};
        }
        return 99;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2u);
  // 0.5 s + 1.0 s of deterministic backoff.
  EXPECT_EQ(clock.now(), sim_seconds(1.5));
}

TEST(RunWithRetry, NonRetryableErrorReturnsImmediately) {
  RetryPolicy policy;
  VirtualClock clock;
  RetryStats stats;
  int calls = 0;
  const Result<int> result = run_with_retry<int>(
      policy, clock, "op", stats, [&]() -> Result<int> {
        ++calls;
        return util::Error{ErrorCode::kInvalidArgument, "bad args"};
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(RunWithRetry, ExhaustsAttemptsAndReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  VirtualClock clock;
  RetryStats stats;
  int calls = 0;
  const Result<int> result = run_with_retry<int>(
      policy, clock, "op", stats, [&]() -> Result<int> {
        ++calls;
        return util::Error{ErrorCode::kUnreachable, "still down"};
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnreachable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2u);
}

TEST(RunWithRetry, DisabledPolicyNeverRetries) {
  RetryPolicy policy;
  policy.enabled = false;
  VirtualClock clock;
  RetryStats stats;
  int calls = 0;
  const Result<int> result = run_with_retry<int>(
      policy, clock, "op", stats, [&]() -> Result<int> {
        ++calls;
        return util::Error{ErrorCode::kTimeout, "slow"};
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(RunWithRetry, BudgetCutsOffLongBackoffs) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_s = 10.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_s = 10.0;
  policy.jitter_frac = 0.0;
  policy.timeout_budget_s = 25.0;  // fits two 10 s backoffs, not three
  VirtualClock clock;
  RetryStats stats;
  int calls = 0;
  const Result<int> result = run_with_retry<int>(
      policy, clock, "op", stats, [&]() -> Result<int> {
        ++calls;
        return util::Error{ErrorCode::kTimeout, "slow"};
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.budget_exhausted, 1u);
  EXPECT_EQ(clock.now(), sim_seconds(20.0));
}

TEST(RunWithRetry, JitterIsDeterministicForSameLabelAndClock) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  VirtualClock clock_a, clock_b;
  RetryStats stats_a, stats_b;
  const auto failing = [](int& calls) {
    return [&calls]() -> Result<int> {
      ++calls;
      return util::Error{ErrorCode::kTimeout, "slow"};
    };
  };
  int calls_a = 0, calls_b = 0;
  (void)run_with_retry<int>(policy, clock_a, "op-x", stats_a,
                            failing(calls_a));
  (void)run_with_retry<int>(policy, clock_b, "op-x", stats_b,
                            failing(calls_b));
  EXPECT_EQ(clock_a.now(), clock_b.now())
      << "identical (label, clock) must replay the identical schedule";
  EXPECT_GT(clock_a.now(), SimTime::zero());
}

// ---------------------------------------------------------------------------
// Circuit breaker lifecycle.
// ---------------------------------------------------------------------------

TEST(Breaker, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreakerPolicy policy;
  policy.trip_threshold = 3;
  CircuitBreaker breaker(policy);
  const SimTime now = sim_seconds(100);
  EXPECT_TRUE(breaker.allow(now));
  breaker.record_failure(now);
  breaker.record_failure(now);
  EXPECT_TRUE(breaker.allow(now)) << "still closed below threshold";
  EXPECT_EQ(breaker.state(now), CircuitBreaker::State::kClosed);
  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(now), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(now));
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(Breaker, SuccessResetsTheFailureStreak) {
  CircuitBreakerPolicy policy;
  policy.trip_threshold = 3;
  CircuitBreaker breaker(policy);
  const SimTime now = sim_seconds(0);
  breaker.record_failure(now);
  breaker.record_failure(now);
  breaker.record_success();
  breaker.record_failure(now);
  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(now), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(Breaker, HalfOpenAdmitsOneProbeThatCloses) {
  CircuitBreakerPolicy policy;
  policy.trip_threshold = 1;
  policy.cooldown_s = 60.0;
  CircuitBreaker breaker(policy);
  breaker.record_failure(sim_seconds(0));
  EXPECT_FALSE(breaker.allow(sim_seconds(30))) << "still cooling down";
  const SimTime later = sim_seconds(61);
  EXPECT_EQ(breaker.state(later), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(later)) << "first caller gets the probe";
  EXPECT_FALSE(breaker.allow(later)) << "second caller must wait";
  breaker.record_success();
  EXPECT_EQ(breaker.state(later), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(later));
}

TEST(Breaker, FailedProbeReopensForAnotherCooldown) {
  CircuitBreakerPolicy policy;
  policy.trip_threshold = 1;
  policy.cooldown_s = 60.0;
  CircuitBreaker breaker(policy);
  breaker.record_failure(sim_seconds(0));
  const SimTime probe_at = sim_seconds(61);
  ASSERT_TRUE(breaker.allow(probe_at));
  breaker.record_failure(probe_at);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.state(sim_seconds(90)), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(sim_seconds(90)));
  EXPECT_EQ(breaker.state(sim_seconds(122)), CircuitBreaker::State::kHalfOpen);
}

TEST(Breaker, DisabledPolicyAlwaysAllows) {
  CircuitBreakerPolicy policy;
  policy.enabled = false;
  policy.trip_threshold = 1;
  CircuitBreaker breaker(policy);
  breaker.record_failure(sim_seconds(0));
  breaker.record_failure(sim_seconds(0));
  EXPECT_TRUE(breaker.allow(sim_seconds(0)));
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(Breaker, RestoreReproducesCheckpointedState) {
  CircuitBreakerPolicy policy;
  policy.trip_threshold = 5;
  policy.cooldown_s = 600.0;
  CircuitBreaker original(policy);
  for (int i = 0; i < 5; ++i) original.record_failure(sim_seconds(100));
  ASSERT_TRUE(original.is_open());

  CircuitBreaker resumed(policy);
  resumed.restore(original.consecutive_failures(), original.is_open(),
                  original.opened_at());
  EXPECT_EQ(resumed.state(sim_seconds(150)), original.state(sim_seconds(150)));
  EXPECT_EQ(resumed.state(sim_seconds(800)), original.state(sim_seconds(800)));
  EXPECT_EQ(resumed.allow(sim_seconds(150)), false);
}

}  // namespace
}  // namespace upin::measure
