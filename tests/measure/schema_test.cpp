// Tests for measure/schema: document ids, builders, round trips.
#include "measure/schema.hpp"

#include <gtest/gtest.h>

namespace upin::measure {
namespace {

using scion::IsdAsn;
using scion::make_asn;
using scion::Path;
using scion::PathHop;

Path sample_path() {
  std::vector<PathHop> hops{
      {IsdAsn(17, make_asn(1, 0xf00)), 0, 1},
      {IsdAsn(17, make_asn(0, 0x1107)), 4, 1},
      {IsdAsn(16, make_asn(0, 0x1002)), 1, 0},
  };
  return Path(std::move(hops), 1452.0, util::sim_millis(23.0));
}

TEST(Schema, PathDocIdMatchesPaperFormat) {
  // "a path whose id is 2_15 identifies the path 15 of the destination 2".
  EXPECT_EQ(path_doc_id(2, 15), "2_15");
}

TEST(Schema, StatsDocIdAppendsTimestamp) {
  EXPECT_EQ(stats_doc_id("2_15", util::sim_seconds(12.0)),
            "2_15_000000012000");
}

TEST(Schema, ServerDocumentFields) {
  const scion::SnetAddress addr{IsdAsn(16, make_asn(0, 0x1002)), "172.31.43.7"};
  const docdb::Document doc = server_document(3, addr);
  EXPECT_EQ(doc.get("_id")->as_string(), "3");
  EXPECT_EQ(doc.get("server_id")->as_int(), 3);
  EXPECT_EQ(doc.get("address")->as_string(), "16-ffaa:0:1002,[172.31.43.7]");
  EXPECT_EQ(doc.get("isd_as")->as_string(), "16-ffaa:0:1002");
  EXPECT_EQ(doc.get("host")->as_string(), "172.31.43.7");
}

TEST(Schema, PathDocumentFields) {
  const docdb::Document doc = path_document(3, 7, sample_path());
  EXPECT_EQ(doc.get("_id")->as_string(), "3_7");
  EXPECT_EQ(doc.get("server_id")->as_int(), 3);
  EXPECT_EQ(doc.get("path_index")->as_int(), 7);
  EXPECT_EQ(doc.get("hop_count")->as_int(), 3);
  EXPECT_EQ(doc.get("hops")->as_array().size(), 3u);
  EXPECT_EQ(doc.get("isds")->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.get("mtu")->as_double(), 1452.0);
  EXPECT_EQ(doc.get("status")->as_string(), "alive");
  EXPECT_NEAR(doc.get("static_latency_ms")->as_double(), 23.0, 1e-6);
}

TEST(Schema, PathDocumentRoundTrip) {
  const docdb::Document doc = path_document(3, 7, sample_path());
  const auto record = parse_path_document(doc);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().id, "3_7");
  EXPECT_EQ(record.value().server_id, 3);
  EXPECT_EQ(record.value().path_index, 7);
  EXPECT_EQ(record.value().hop_count, 3u);
  EXPECT_EQ(record.value().isds, (std::vector<std::int64_t>{16, 17}));
  EXPECT_EQ(record.value().sequence, sample_path().sequence());
}

TEST(Schema, ParsePathDocumentRejectsMalformed) {
  EXPECT_FALSE(parse_path_document(util::Value()).ok());
  EXPECT_FALSE(
      parse_path_document(util::Value::object({{"_id", "x"}})).ok());
  docdb::Document no_isds = path_document(1, 0, sample_path());
  no_isds.as_object().erase("isds");
  EXPECT_FALSE(parse_path_document(no_isds).ok());
}

StatsSample full_sample() {
  StatsSample sample;
  sample.path_id = "3_7";
  sample.server_id = 3;
  sample.timestamp = util::sim_seconds(100.0);
  sample.hop_count = 5;
  sample.isds = {16, 17};
  sample.latency_ms = 41.5;
  sample.loss_pct = 3.3;
  sample.jitter_ms = 0.6;
  sample.bw_up_64 = 4.1;
  sample.bw_down_64 = 11.2;
  sample.bw_up_mtu = 9.0;
  sample.bw_down_mtu = 11.7;
  sample.target_mbps = 12.0;
  return sample;
}

TEST(Schema, StatsDocumentRoundTrip) {
  const docdb::Document doc = stats_document(full_sample());
  EXPECT_EQ(doc.get("_id")->as_string(), "3_7_000000100000");
  const auto parsed = parse_stats_document(doc);
  ASSERT_TRUE(parsed.ok());
  const StatsSample& s = parsed.value();
  EXPECT_EQ(s.path_id, "3_7");
  EXPECT_EQ(s.server_id, 3);
  EXPECT_EQ(s.timestamp, util::sim_seconds(100.0));
  EXPECT_EQ(s.hop_count, 5u);
  EXPECT_EQ(s.isds, (std::vector<std::int64_t>{16, 17}));
  EXPECT_DOUBLE_EQ(*s.latency_ms, 41.5);
  EXPECT_DOUBLE_EQ(s.loss_pct, 3.3);
  EXPECT_DOUBLE_EQ(*s.jitter_ms, 0.6);
  EXPECT_DOUBLE_EQ(*s.bw_up_64, 4.1);
  EXPECT_DOUBLE_EQ(*s.bw_down_mtu, 11.7);
  EXPECT_DOUBLE_EQ(s.target_mbps, 12.0);
}

TEST(Schema, StatsDocumentOmitsUnavailableMetrics) {
  // A fully lost ping has no latency/jitter; failed bwtests no bandwidth.
  StatsSample sample = full_sample();
  sample.latency_ms.reset();
  sample.jitter_ms.reset();
  sample.bw_up_64.reset();
  sample.bw_down_64.reset();
  sample.bw_up_mtu.reset();
  sample.bw_down_mtu.reset();
  sample.loss_pct = 100.0;
  const docdb::Document doc = stats_document(sample);
  EXPECT_EQ(doc.get("latency_ms"), nullptr);
  EXPECT_EQ(doc.get("jitter_ms"), nullptr);
  const auto parsed = parse_stats_document(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().latency_ms.has_value());
  EXPECT_FALSE(parsed.value().bw_down_mtu.has_value());
  EXPECT_DOUBLE_EQ(parsed.value().loss_pct, 100.0);
}

TEST(Schema, ParseStatsDocumentRejectsMalformed) {
  EXPECT_FALSE(parse_stats_document(util::Value()).ok());
  docdb::Document missing = stats_document(full_sample());
  missing.as_object().erase("path_id");
  EXPECT_FALSE(parse_stats_document(missing).ok());
}

TEST(Schema, CollectionNamesMatchPaperFig3) {
  EXPECT_STREQ(kAvailableServers, "availableServers");
  EXPECT_STREQ(kPaths, "paths");
  EXPECT_STREQ(kPathsStats, "paths_stats");
}

}  // namespace
}  // namespace upin::measure
