// Tests for measure/testsuite: the three-phase campaign engine (§5).
#include "measure/testsuite.hpp"

#include <gtest/gtest.h>

namespace upin::measure {
namespace {

using docdb::Filter;
using util::Value;

class TestSuiteTest : public ::testing::Test {
 protected:
  /// Server-side bwtest errors off: these tests do exact accounting of
  /// documents and timeline; the fault class has its own tests below.
  static simnet::NetworkConfig reliable() {
    simnet::NetworkConfig config;
    config.server_error_prob = 0.0;
    return config;
  }

  TestSuiteTest()
      : env_(scion::scionlab_topology()),
        host_(env_, 42, env_.user_as, "10.0.8.1", reliable()) {}

  TestSuiteConfig ireland_config(int iterations = 1) {
    TestSuiteConfig config;
    config.iterations = iterations;
    config.server_ids = {{3}};  // Ireland
    return config;
  }

  scion::ScionlabEnv env_;
  apps::ScionHost host_;
  docdb::Database db_;
};

TEST_F(TestSuiteTest, InitializePopulatesAvailableServers) {
  TestSuite suite(host_, db_, {});
  ASSERT_TRUE(suite.initialize().ok());
  EXPECT_EQ(db_.collection(kAvailableServers).size(), 21u);
  const auto first = db_.collection(kAvailableServers).find_by_id("1");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().get("isd_as")->as_string(), "19-ffaa:0:1303");
}

TEST_F(TestSuiteTest, InitializeIsIdempotent) {
  TestSuite suite(host_, db_, {});
  ASSERT_TRUE(suite.initialize().ok());
  ASSERT_TRUE(suite.initialize().ok());
  EXPECT_EQ(db_.collection(kAvailableServers).size(), 21u);
}

TEST_F(TestSuiteTest, InitializeCreatesIndexes) {
  TestSuite suite(host_, db_, {});
  ASSERT_TRUE(suite.initialize().ok());
  EXPECT_EQ(db_.collection(kPathsStats).indexed_fields().size(), 3u);
  EXPECT_EQ(db_.collection(kPaths).indexed_fields().size(), 1u);
}

TEST_F(TestSuiteTest, CollectPathsAppliesHopPruning) {
  TestSuite suite(host_, db_, ireland_config());
  ASSERT_TRUE(suite.initialize().ok());
  ASSERT_TRUE(suite.collect_paths().ok());
  const auto docs = db_.collection(kPaths).find(Filter::match_all());
  ASSERT_FALSE(docs.empty());
  std::size_t min_hops = SIZE_MAX;
  for (const auto& doc : docs) {
    min_hops = std::min(min_hops,
                        static_cast<std::size_t>(doc.get("hop_count")->as_int()));
  }
  for (const auto& doc : docs) {
    EXPECT_LE(static_cast<std::size_t>(doc.get("hop_count")->as_int()),
              min_hops + 1)
        << "paper §5.2: keep hop count <= min + 1";
  }
}

TEST_F(TestSuiteTest, CollectPathsAssignsSequentialIds) {
  TestSuite suite(host_, db_, ireland_config());
  ASSERT_TRUE(suite.initialize().ok());
  ASSERT_TRUE(suite.collect_paths().ok());
  const std::size_t count = db_.collection(kPaths).size();
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(db_.collection(kPaths)
                    .find_by_id("3_" + std::to_string(i))
                    .ok());
  }
}

TEST_F(TestSuiteTest, CollectPathsDeletesVanishedPaths) {
  TestSuite suite(host_, db_, ireland_config());
  ASSERT_TRUE(suite.initialize().ok());
  // A stale path document that no current path will reclaim.
  ASSERT_TRUE(db_.collection(kPaths)
                  .insert_one(Value::object({{"_id", "3_999"},
                                             {"server_id", 3},
                                             {"path_index", 999}}))
                  .ok());
  ASSERT_TRUE(suite.collect_paths().ok());
  EXPECT_FALSE(db_.collection(kPaths).find_by_id("3_999").ok());
  EXPECT_GE(suite.progress().paths_deleted, 1u);
}

TEST_F(TestSuiteTest, CollectPathsIsIdempotentSnapshot) {
  TestSuite suite(host_, db_, ireland_config());
  ASSERT_TRUE(suite.initialize().ok());
  ASSERT_TRUE(suite.collect_paths().ok());
  const std::size_t first = db_.collection(kPaths).size();
  ASSERT_TRUE(suite.collect_paths().ok());
  EXPECT_EQ(db_.collection(kPaths).size(), first);
}

TEST_F(TestSuiteTest, RunTestsProducesOneDocPerPathPerIteration) {
  TestSuiteConfig config = ireland_config(3);
  TestSuite suite(host_, db_, config);
  ASSERT_TRUE(suite.run().ok());
  const std::size_t paths = db_.collection(kPaths).size();
  EXPECT_EQ(db_.collection(kPathsStats).size(), 3 * paths);
  EXPECT_EQ(suite.progress().path_tests_run, 3 * paths);
  EXPECT_EQ(suite.progress().batches_inserted, 3u);
}

TEST_F(TestSuiteTest, StatsDocumentsAreWellFormed) {
  TestSuite suite(host_, db_, ireland_config());
  ASSERT_TRUE(suite.run().ok());
  db_.collection(kPathsStats).for_each([&](const docdb::Document& doc) {
    const auto sample = parse_stats_document(doc);
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(sample.value().server_id, 3);
    EXPECT_GE(sample.value().loss_pct, 0.0);
    EXPECT_LE(sample.value().loss_pct, 100.0);
    EXPECT_TRUE(sample.value().bw_down_mtu.has_value());
    EXPECT_DOUBLE_EQ(sample.value().target_mbps, 12.0);
  });
}

TEST_F(TestSuiteTest, SkipCollectionReusesExistingPaths) {
  TestSuite first(host_, db_, ireland_config());
  ASSERT_TRUE(first.run().ok());
  const std::size_t stats_before = db_.collection(kPathsStats).size();

  TestSuiteConfig config = ireland_config();
  config.skip_collection = true;  // --skip
  TestSuite second(host_, db_, config);
  ASSERT_TRUE(second.run().ok());
  EXPECT_EQ(second.progress().paths_collected, 0u);
  EXPECT_GT(db_.collection(kPathsStats).size(), stats_before);
}

TEST_F(TestSuiteTest, SomeOnlyRestrictsToFirstDestination) {
  TestSuiteConfig config;
  config.iterations = 1;
  config.some_only = true;  // --some_only
  TestSuite suite(host_, db_, config);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_EQ(suite.progress().destinations_visited, 1u);
  // Every stats doc belongs to server 1 (the first destination).
  db_.collection(kPathsStats).for_each([](const docdb::Document& doc) {
    EXPECT_EQ(doc.get("server_id")->as_int(), 1);
  });
}

TEST_F(TestSuiteTest, OutageDestinationStillProducesLossDocuments) {
  // Server failure mode (§4.1.2): destination dark -> 100% loss recorded,
  // campaign keeps going.
  host_.inject_outage(scion::scionlab::kIreland, util::SimTime::zero(),
                      util::sim_seconds(24 * 3600.0));
  TestSuite suite(host_, db_, ireland_config());
  ASSERT_TRUE(suite.run().ok());
  ASSERT_GT(db_.collection(kPathsStats).size(), 0u);
  db_.collection(kPathsStats).for_each([](const docdb::Document& doc) {
    EXPECT_DOUBLE_EQ(doc.get("loss_pct")->as_double(), 100.0);
    EXPECT_EQ(doc.get("latency_ms"), nullptr);
  });
}

TEST_F(TestSuiteTest, TimelineAdvancesAcrossCampaign) {
  TestSuite suite(host_, db_, ireland_config(2));
  ASSERT_TRUE(suite.run().ok());
  const double elapsed = util::to_seconds(host_.clock().now());
  const std::size_t tests = suite.progress().path_tests_run;
  // Each test occupies 3 s ping + 12 s bwtests + 0.5 s gap.
  EXPECT_NEAR(elapsed, static_cast<double>(tests) * 15.5, 1.0);
}

TEST_F(TestSuiteTest, ResumeTopsUpToTargetIterations) {
  // Simulated crash-and-restart: 2 iterations land, then a resume run
  // targeting 5 adds exactly the missing 3.
  TestSuite first(host_, db_, ireland_config(2));
  ASSERT_TRUE(first.run().ok());
  const std::size_t paths = db_.collection(kPaths).size();
  ASSERT_EQ(db_.collection(kPathsStats).size(), 2 * paths);

  TestSuiteConfig config = ireland_config(5);
  config.skip_collection = true;
  config.resume = true;
  TestSuite resumed(host_, db_, config);
  EXPECT_EQ(resumed.completed_iterations(3), 2u);
  ASSERT_TRUE(resumed.run().ok());
  EXPECT_EQ(resumed.progress().path_tests_run, 3 * paths);
  EXPECT_EQ(db_.collection(kPathsStats).size(), 5 * paths);
}

TEST_F(TestSuiteTest, ResumeIsNoopWhenTargetAlreadyMet) {
  TestSuite first(host_, db_, ireland_config(3));
  ASSERT_TRUE(first.run().ok());
  TestSuiteConfig config = ireland_config(3);
  config.skip_collection = true;
  config.resume = true;
  TestSuite resumed(host_, db_, config);
  ASSERT_TRUE(resumed.run().ok());
  EXPECT_EQ(resumed.progress().path_tests_run, 0u);
}

TEST_F(TestSuiteTest, ResumeWithNoHistoryRunsEverything) {
  TestSuiteConfig config = ireland_config(2);
  config.resume = true;
  TestSuite suite(host_, db_, config);
  EXPECT_EQ(suite.completed_iterations(3), 0u);
  ASSERT_TRUE(suite.run().ok());
  const std::size_t paths = db_.collection(kPaths).size();
  EXPECT_EQ(suite.progress().path_tests_run, 2 * paths);
}

TEST_F(TestSuiteTest, BwtestServerErrorsAreToleratedAndCounted) {
  // A host whose bwtest servers always answer with errors (§4.1.2):
  // the campaign keeps running, counts the failures, and stores stats
  // documents that simply lack the bandwidth fields.
  simnet::NetworkConfig faulty;
  faulty.server_error_prob = 1.0;
  apps::ScionHost flaky_host(env_, 42, env_.user_as, "10.0.8.1", faulty);
  TestSuite suite(flaky_host, db_, ireland_config());
  ASSERT_TRUE(suite.run().ok());
  EXPECT_GT(suite.progress().bwtest_failures, 0u);
  EXPECT_GT(suite.progress().stats_inserted, 0u);
  db_.collection(kPathsStats).for_each([](const docdb::Document& doc) {
    EXPECT_NE(doc.get("latency_ms"), nullptr) << "ping still worked";
    EXPECT_TRUE(doc.get("bw")->as_object().empty())
        << "no bandwidth numbers from erroring servers";
  });
}

TEST_F(TestSuiteTest, MalformedPathDocumentIsSkippedGracefully) {
  TestSuite suite(host_, db_, ireland_config());
  ASSERT_TRUE(suite.initialize().ok());
  ASSERT_TRUE(suite.collect_paths().ok());
  const std::size_t real_paths = db_.collection(kPaths).size();
  // Inject a garbage document for destination 3 (simulating data loss /
  // a bad writer — §4.1.2's "bad response" class).
  ASSERT_TRUE(db_.collection(kPaths)
                  .insert_one(Value::object({{"_id", "3_garbage"},
                                             {"server_id", 3},
                                             {"path_index", 500}}))
                  .ok());
  TestSuiteConfig config = ireland_config();
  config.skip_collection = true;
  TestSuite runner(host_, db_, config);
  ASSERT_TRUE(runner.run().ok());
  EXPECT_EQ(runner.progress().path_tests_run, real_paths)
      << "only well-formed paths are tested";
}

TEST_F(TestSuiteTest, ZeroIterationsProducesNoStats) {
  TestSuiteConfig config = ireland_config(0);
  TestSuite suite(host_, db_, config);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_GT(suite.progress().paths_collected, 0u);  // collection still ran
  EXPECT_EQ(suite.progress().stats_inserted, 0u);
}

TEST_F(TestSuiteTest, SkipWithoutPriorCollectionTestsNothing) {
  TestSuiteConfig config = ireland_config();
  config.skip_collection = true;
  TestSuite suite(host_, db_, config);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_EQ(suite.progress().path_tests_run, 0u);
}

TEST_F(TestSuiteTest, TargetMbpsIsRecordedInDocuments) {
  TestSuiteConfig config = ireland_config();
  config.bw_target_mbps = 150.0;
  TestSuite suite(host_, db_, config);
  ASSERT_TRUE(suite.run().ok());
  db_.collection(kPathsStats).for_each([](const docdb::Document& doc) {
    EXPECT_DOUBLE_EQ(doc.get("target_mbps")->as_double(), 150.0);
  });
}

TEST_F(TestSuiteTest, HopSlackZeroKeepsOnlyMinHopPaths) {
  TestSuiteConfig config = ireland_config();
  config.hop_slack = 0;
  TestSuite suite(host_, db_, config);
  ASSERT_TRUE(suite.initialize().ok());
  ASSERT_TRUE(suite.collect_paths().ok());
  std::size_t min_hops = SIZE_MAX;
  db_.collection(kPaths).for_each([&](const docdb::Document& doc) {
    min_hops = std::min(
        min_hops, static_cast<std::size_t>(doc.get("hop_count")->as_int()));
  });
  db_.collection(kPaths).for_each([&](const docdb::Document& doc) {
    EXPECT_EQ(static_cast<std::size_t>(doc.get("hop_count")->as_int()),
              min_hops);
  });
}

TEST_F(TestSuiteTest, SignedWritesAcceptedWithTrustStore) {
  scion::TrustStore trust;
  ASSERT_TRUE(
      trust.register_core(scion::IsdAsn(17, scion::make_asn(0, 0x1101))).ok());
  db_.set_write_guard(trust.make_write_guard());

  TestSuite suite(host_, db_, ireland_config());
  suite.enable_signed_writes(trust);
  ASSERT_TRUE(suite.run().ok());
  EXPECT_GT(suite.progress().stats_inserted, 0u);
  EXPECT_EQ(suite.progress().batches_rejected, 0u);
}

TEST_F(TestSuiteTest, UnsignedWritesRejectedWhenGuarded) {
  scion::TrustStore trust;
  ASSERT_TRUE(
      trust.register_core(scion::IsdAsn(17, scion::make_asn(0, 0x1101))).ok());
  db_.set_write_guard(trust.make_write_guard());

  TestSuite suite(host_, db_, ireland_config());
  // enable_signed_writes NOT called: batches go through guarded_insert?
  // No — unsigned suites write directly to the collection, which models
  // the in-process trusted writer.  Verify that the *remote* surface
  // rejects instead.
  const auto rejected = db_.guarded_insert_many(
      kPathsStats, {Value::object({{"_id", "x"}})}, Value());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, util::ErrorCode::kPermissionDenied);
}

TEST_F(TestSuiteTest, SignedWritesFailWithoutRegisteredCore) {
  scion::TrustStore trust;  // no core registered for ISD 17
  TestSuite suite(host_, db_, ireland_config());
  suite.enable_signed_writes(trust);
  ASSERT_TRUE(suite.run().ok());  // campaign survives (fault tolerance)
  EXPECT_EQ(suite.progress().stats_inserted, 0u);
  EXPECT_GT(suite.progress().batches_rejected, 0u);
}

}  // namespace
}  // namespace upin::measure
