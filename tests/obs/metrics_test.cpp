// Tests for obs/metrics: counters, gauges, latency histograms, registry.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace upin::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ResetZeroes) {
  Counter c;
  c.add(7);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(LatencyHistogram, PlacesSamplesInBuckets) {
  LatencyHistogram h(0.0, 10.0, 5);
  h.observe(0.5);   // bin 0
  h.observe(3.0);   // bin 1
  h.observe(9.99);  // bin 4
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 3.0 + 9.99);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 3.0 + 9.99) / 3.0);
}

TEST(LatencyHistogram, ClampsOutOfRangeAndInfinities) {
  LatencyHistogram h(0.0, 10.0, 5);
  h.observe(-7.0);                                     // below lo -> bin 0
  h.observe(-std::numeric_limits<double>::infinity());  // -> bin 0
  h.observe(50.0);                                     // above hi -> last bin
  h.observe(std::numeric_limits<double>::infinity());   // -> last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LatencyHistogram, BinEdges) {
  LatencyHistogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 20.0);
}

TEST(LatencyHistogram, QuantileReturnsBucketUpperEdge) {
  LatencyHistogram h(0.0, 100.0, 10);
  for (int i = 0; i < 9; ++i) h.observe(5.0);  // bin 0, edge 10
  h.observe(95.0);                             // bin 9, edge 100
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(LatencyHistogram, EmptyQuantileAndMeanAreZero) {
  LatencyHistogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleBinSwallowsEverything) {
  LatencyHistogram h(0.0, 1.0, 1);
  h.observe(-5.0);
  h.observe(0.5);
  h.observe(99.0);
  EXPECT_EQ(h.bin_count(), 1u);
  EXPECT_EQ(h.count(0), 3u);
}

TEST(Registry, GetOrCreateReturnsSameInstance) {
  Registry registry;
  Counter& a = registry.counter("upin_test_total");
  Counter& b = registry.counter("upin_test_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // First histogram registration fixes the bucket layout.
  LatencyHistogram& h1 = registry.histogram("upin_test_us", 0.0, 10.0, 5);
  LatencyHistogram& h2 = registry.histogram("upin_test_us", 0.0, 999.0, 99);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bin_count(), 5u);
}

TEST(Registry, PrometheusExposition) {
  Registry registry;
  registry.counter("upin_b_total").add(2);
  registry.counter("upin_a_total").add(1);
  registry.gauge("upin_g").set(-4);
  LatencyHistogram& h = registry.histogram("upin_lat_us", 0.0, 10.0, 2);
  h.observe(1.0);
  h.observe(7.0);
  const std::string text = registry.to_prometheus();
  // Counters are sorted by name; histogram buckets are cumulative.
  EXPECT_LT(text.find("upin_a_total 1"), text.find("upin_b_total 2"));
  EXPECT_NE(text.find("# TYPE upin_a_total counter"), std::string::npos);
  EXPECT_NE(text.find("upin_g -4"), std::string::npos);
  EXPECT_NE(text.find("upin_lat_us_bucket{le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("upin_lat_us_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("upin_lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("upin_lat_us_sum 8"), std::string::npos);
  EXPECT_NE(text.find("upin_lat_us_count 2"), std::string::npos);
}

TEST(Registry, SnapshotShape) {
  Registry registry;
  registry.counter("upin_c_total").add(5);
  registry.gauge("upin_g").set(9);
  registry.histogram("upin_h_us", 0.0, 4.0, 2).observe(1.0);
  const util::Value snap = registry.snapshot();
  ASSERT_TRUE(snap.is_object());
  const util::Value* c = snap.get_path("counters.upin_c_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->as_int(), 5);
  const util::Value* g = snap.get_path("gauges.upin_g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->as_int(), 9);
  const util::Value* h = snap.get_path("histograms.upin_h_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->get("total")->as_int(), 1);
  EXPECT_DOUBLE_EQ(h->get("lo")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(h->get("width")->as_double(), 2.0);
  ASSERT_TRUE(h->get("buckets")->is_array());
  EXPECT_EQ(h->get("buckets")->as_array().size(), 2u);
  EXPECT_EQ(h->get("buckets")->as_array()[0].as_int(), 1);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Registry registry;
  Counter& c = registry.counter("upin_r_total");
  c.add(10);
  registry.gauge("upin_rg").set(3);
  registry.histogram("upin_rh_us", 0.0, 1.0, 2).observe(0.5);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(registry.gauge("upin_rg").value(), 0);
  EXPECT_EQ(registry.histogram("upin_rh_us", 0.0, 1.0, 2).total(), 0u);
  // Same instance survives the reset.
  EXPECT_EQ(&registry.counter("upin_r_total"), &c);
}

TEST(PipelineSummary, ReportsJournalCounters) {
  Registry registry;
  registry.counter("upin_journal_events_enqueued_total").add(40);
  registry.counter("upin_journal_groups_committed_total").add(10);
  registry.counter("upin_journal_backpressure_stalls_total").add(2);
  registry.histogram("upin_journal_flush_latency_us", 0.0, 5000.0, 50)
      .observe(120.0);
  const std::string table = pipeline_summary(registry);
  EXPECT_NE(table.find("40 in 10 groups (mean group size 4.00)"),
            std::string::npos);
  EXPECT_NE(table.find("2 stalls"), std::string::npos);
  EXPECT_NE(table.find("flush latency"), std::string::npos);
}

TEST(LabeledMetrics, SeriesAreSeparablePerCampaign) {
  Registry registry;
  registry.counter("upin_fleet_units_total", "0").add(3);
  registry.counter("upin_fleet_units_total", "1").add(7);
  registry.gauge("upin_fleet_campaign_state", "0").set(2);
  registry.histogram("upin_fleet_unit_clock_s", "1", 0.0, 100.0, 10)
      .observe(12.0);

  // Same (family, campaign) resolves to the same instance.
  EXPECT_EQ(registry.counter("upin_fleet_units_total", "0").value(), 3u);
  EXPECT_EQ(registry.counter("upin_fleet_units_total", "1").value(), 7u);
  // A different campaign is an independent series.
  EXPECT_EQ(registry.counter("upin_fleet_units_total", "2").value(), 0u);
  // The labeled family does not collide with an unlabeled metric.
  EXPECT_EQ(registry.counter("upin_fleet_units_total2").value(), 0u);
}

TEST(LabeledMetrics, PrometheusExpositionCarriesTheCampaignLabel) {
  Registry registry;
  registry.counter("upin_fleet_units_total", "0").add(5);
  registry.counter("upin_fleet_units_total", "3").add(1);
  registry.gauge("upin_fleet_campaign_state", "3").set(1);
  registry.histogram("upin_fleet_unit_clock_s", "3", 0.0, 10.0, 2)
      .observe(4.0);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE upin_fleet_units_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("upin_fleet_units_total{campaign=\"0\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("upin_fleet_units_total{campaign=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("upin_fleet_campaign_state{campaign=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("upin_fleet_unit_clock_s_bucket{campaign=\"3\",le=\"5\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("upin_fleet_unit_clock_s_count{campaign=\"3\"} 1"),
            std::string::npos);
  // One TYPE line per family, not one per labeled series.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE upin_fleet_units_total counter");
       at != std::string::npos;
       at = text.find("# TYPE upin_fleet_units_total counter", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(LabeledMetrics, SnapshotAndResetCoverLabeledSeries) {
  Registry registry;
  registry.counter("upin_fleet_errors_total", "2").add(4);
  registry.gauge("upin_fleet_lane_depth", "2").set(3);
  const util::Value snap = registry.snapshot();
  const util::Value* counter =
      snap.get_path("counters.upin_fleet_errors_total{campaign=\"2\"}");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->try_int().value_or(-1), 4);
  const util::Value* gauge =
      snap.get_path("gauges.upin_fleet_lane_depth{campaign=\"2\"}");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->try_int().value_or(-1), 3);

  registry.reset_values();
  EXPECT_EQ(registry.counter("upin_fleet_errors_total", "2").value(), 0u);
  EXPECT_EQ(registry.gauge("upin_fleet_lane_depth", "2").value(), 0);
}

TEST(PipelineSummary, EmptyRegistryIsAllZeros) {
  Registry registry;
  const std::string table = pipeline_summary(registry);
  EXPECT_NE(table.find("0 in 0 groups"), std::string::npos);
  EXPECT_NE(table.find("0 stalls"), std::string::npos);
}

}  // namespace
}  // namespace upin::obs
