// Tests for obs/report: virtual-time progress cadence and lazy building.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace upin::obs {
namespace {

class ReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Log::set_level(util::LogLevel::kInfo);
    util::Log::set_sink([this](util::LogLevel, std::string_view message) {
      captured_.emplace_back(message);
    });
  }
  void TearDown() override {
    util::Log::set_sink(nullptr);
    util::Log::set_level(util::LogLevel::kWarn);
  }
  std::vector<std::string> captured_;
};

TEST_F(ReporterTest, FiresOncePerInterval) {
  ProgressReporter reporter(util::sim_seconds(10.0));
  int built = 0;
  const auto builder = [&] {
    ++built;
    return std::string("progress");
  };
  reporter.tick(util::sim_seconds(1.0), builder);   // before first mark
  reporter.tick(util::sim_seconds(10.0), builder);  // fires
  reporter.tick(util::sim_seconds(12.0), builder);  // same interval
  reporter.tick(util::sim_seconds(20.0), builder);  // fires again
  EXPECT_EQ(built, 2);
  EXPECT_EQ(captured_.size(), 2u);
}

TEST_F(ReporterTest, SkipsMissedIntervalsWithoutReplay) {
  ProgressReporter reporter(util::sim_seconds(10.0));
  int built = 0;
  const auto builder = [&] {
    ++built;
    return std::string("progress");
  };
  // Virtual time can jump across many intervals in one probe; only one
  // report fires and the mark lands past `now`.
  reporter.tick(util::sim_seconds(95.0), builder);
  EXPECT_EQ(built, 1);
  reporter.tick(util::sim_seconds(99.0), builder);
  EXPECT_EQ(built, 1);
  reporter.tick(util::sim_seconds(100.0), builder);
  EXPECT_EQ(built, 2);
}

TEST_F(ReporterTest, FilteredLevelNeverInvokesBuilder) {
  util::Log::set_level(util::LogLevel::kWarn);
  ProgressReporter reporter(util::sim_seconds(1.0), util::LogLevel::kInfo);
  bool built = false;
  reporter.tick(util::sim_seconds(50.0), [&] {
    built = true;
    return std::string("expensive");
  });
  EXPECT_FALSE(built);
  EXPECT_TRUE(captured_.empty());
}

TEST_F(ReporterTest, FinalBypassesTimer) {
  ProgressReporter reporter(util::sim_seconds(1000.0));
  reporter.final([] { return std::string("done units=5/5"); });
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0], "done units=5/5");
}

}  // namespace
}  // namespace upin::obs
