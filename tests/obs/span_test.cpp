// Tests for obs/span: virtual-clock span trees, adoption, rendering.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "util/clock.hpp"

namespace upin::obs {
namespace {

util::SimTime ns(std::int64_t n) { return util::SimTime(n); }

TEST(SpanTracer, BuildsHierarchy) {
  SpanTracer tracer("campaign");
  tracer.open("destination 3", ns(0));
  tracer.open("path 3_0", ns(10));
  tracer.open("ping", ns(20));
  tracer.close(ns(30));  // ping
  tracer.close(ns(40));  // path
  tracer.close(ns(50));  // destination
  EXPECT_EQ(tracer.span_count(), 4u);
  const Span& root = tracer.root();
  EXPECT_EQ(root.name, "campaign");
  ASSERT_EQ(root.children.size(), 1u);
  const Span& destination = *root.children[0];
  EXPECT_EQ(destination.name, "destination 3");
  EXPECT_EQ(destination.end, ns(50));
  ASSERT_EQ(destination.children.size(), 1u);
  EXPECT_EQ(destination.children[0]->children[0]->name, "ping");
}

TEST(SpanTracer, RenderIsDeterministicAndIndented) {
  const auto build = [] {
    SpanTracer tracer("campaign");
    tracer.open("unit s1 i0", ns(100));
    tracer.open("ping", ns(110));
    tracer.close(ns(200));
    tracer.close(ns(250));
    return tracer.render();
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_EQ(first,
            "campaign [0..250]\n"
            "  unit s1 i0 [100..250]\n"
            "    ping [110..200]\n");
}

TEST(SpanTracer, RootExtentDerivedFromChildren) {
  SpanTracer tracer("campaign");
  tracer.open("a", ns(5));
  tracer.close(ns(75));
  // The root was never closed: its rendered end is the subtree extent.
  EXPECT_EQ(tracer.render(),
            "campaign [0..75]\n"
            "  a [5..75]\n");
}

TEST(SpanTracer, UnbalancedCloseNeverPopsRoot) {
  SpanTracer tracer("campaign");
  tracer.open("a", ns(1));
  tracer.close(ns(2));
  tracer.close(ns(3));  // extra close: ignored, root stays open
  tracer.open("b", ns(4));
  tracer.close(ns(5));
  const Span& root = tracer.root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[1]->name, "b");
}

TEST(SpanTracer, AdoptGraftsWorkerTree) {
  SpanTracer campaign("campaign");
  SpanTracer worker("destination 4");
  worker.open("path 4_0", ns(10));
  worker.close(ns(90));
  campaign.adopt(std::move(worker));
  EXPECT_EQ(campaign.span_count(), 3u);
  const Span& root = campaign.root();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->name, "destination 4");
  EXPECT_EQ(root.children[0]->children[0]->name, "path 4_0");
}

TEST(SpanTracer, AdoptionOrderIsCallerControlled) {
  SpanTracer campaign("campaign");
  SpanTracer w2("destination 2");
  SpanTracer w1("destination 1");
  // Adopt in destination order regardless of construction order.
  campaign.adopt(std::move(w1));
  campaign.adopt(std::move(w2));
  const Span& root = campaign.root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "destination 1");
  EXPECT_EQ(root.children[1]->name, "destination 2");
}

TEST(SpanTracer, JsonShape) {
  SpanTracer tracer("campaign");
  tracer.open("ping", ns(7));
  tracer.close(ns(9));
  const util::Value json = tracer.to_json();
  EXPECT_EQ(json.get("name")->as_string(), "campaign");
  ASSERT_TRUE(json.get("children")->is_array());
  const util::Value& child = json.get("children")->as_array()[0];
  EXPECT_EQ(child.get("name")->as_string(), "ping");
  EXPECT_EQ(child.get("start_ns")->as_int(), 7);
  EXPECT_EQ(child.get("end_ns")->as_int(), 9);
}

TEST(ScopedSpan, FollowsVirtualClock) {
  util::VirtualClock clock;
  SpanTracer tracer("campaign");
  clock.advance(ns(100));
  {
    const ScopedSpan unit(&tracer, clock, "unit");
    clock.advance(ns(50));
    {
      const ScopedSpan probe(&tracer, clock, "probe");
      clock.advance(ns(25));
    }
  }
  const Span& unit = *tracer.root().children[0];
  EXPECT_EQ(unit.start, ns(100));
  EXPECT_EQ(unit.end, ns(175));
  const Span& probe = *unit.children[0];
  EXPECT_EQ(probe.start, ns(150));
  EXPECT_EQ(probe.end, ns(175));
}

TEST(ScopedSpan, NullTracerIsNoop) {
  util::VirtualClock clock;
  const ScopedSpan span(nullptr, clock, "ignored");
  // Nothing to assert beyond "does not crash".
  SUCCEED();
}

}  // namespace
}  // namespace upin::obs
