// Control-plane churn properties (the lifetimes tentpole's pin):
//
//   1. No probe is ever sent on a path whose revocation was delivered —
//      under a deterministic flap storm, every probed path was live at
//      probe start.
//   2. When a pinned path is revoked, the Path Controller fails over to
//      a policy-conformant live alternative instead of surfacing the
//      error.
//   3. Kill-then-resume under the same storm is bit-identical: same
//      paths_stats documents AND the same final path-cache state.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "docdb/database.hpp"
#include "measure/testsuite.hpp"
#include "scion/scionlab.hpp"
#include "select/selector.hpp"
#include "upin/controller.hpp"

namespace upin {
namespace {

using util::SimTime;

simnet::NetworkConfig storm_config() {
  simnet::FaultPlanConfig faults;
  faults.link_flap_per_hour = 6.0;
  faults.server_down_per_hour = 2.0;
  simnet::NetworkConfig config;
  config.server_error_prob = 0.0;
  config.faults = faults;
  return config;
}

TEST(ControlPlaneChurn, NoProbeOnAnAlreadyRevokedPath) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1", storm_config());
  scion::ControlPlane& control_plane = host.control_plane();
  ASSERT_FALSE(control_plane.revocations().events().empty())
      << "the storm must emit revocations or the property is vacuous";

  std::size_t probes = 0;
  std::size_t revoked_rejections = 0;
  for (int step = 0; step < 240; ++step) {
    // Rotate destinations so several (src, dst) pairs churn in the cache.
    const scion::SnetAddress& dst = env.servers[(step % 3 == 0)   ? 2
                                                : (step % 3 == 1) ? 4
                                                                  : 9];
    const SimTime before = host.clock().now();
    apps::PingOptions options;
    options.count = 5;
    const util::Result<apps::PingReport> report = host.ping(dst, options);
    if (report.ok()) {
      ++probes;
      // THE invariant: the path that carried this probe had no delivered,
      // unexpired revocation when the probe was dispatched.
      EXPECT_FALSE(control_plane.path_revoked(report.value().path, before))
          << "step " << step << ": probed a revoked path "
          << report.value().path.to_string();
    } else if (report.error().code == util::ErrorCode::kRevoked) {
      ++revoked_rejections;
    }
    host.clock().advance(util::sim_seconds(30.0));
  }
  EXPECT_GT(probes, 0u);
  EXPECT_GT(revoked_rejections + probes, 200u)
      << "revocations must not wedge the host into permanent failure";
}

TEST(ControlPlaneChurn, FailoverPicksPolicyConformantAlternative) {
  const scion::ScionlabEnv env = scion::scionlab_topology();

  // Measure on a calm network so the selector has clean samples...
  docdb::Database db;
  {
    simnet::NetworkConfig calm;
    calm.server_error_prob = 0.0;
    apps::ScionHost calm_host(env, 42, env.user_as, "10.0.8.1", calm);
    measure::TestSuiteConfig config;
    config.iterations = 3;
    config.server_ids = {{3}};
    measure::TestSuite suite(calm_host, db, config);
    ASSERT_TRUE(suite.run().ok());
  }

  // ...then drive intents on a host living inside the flap storm.  Flaps
  // only (no server-down): a probe on a flapped-but-unrevoked path loses
  // packets yet completes, so the only hard failure left is kRevoked.
  simnet::NetworkConfig net = storm_config();
  net.faults.server_down_per_hour = 0.0;
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1", net);
  scion::ControlPlane& control_plane = host.control_plane();

  select::PathSelector selector(db, env.topology);
  selector.attach_liveness(&control_plane, &host.clock());
  upinfw::PathController controller(host, selector);

  select::UserRequest request;
  request.server_id = 3;
  request.objective = select::Objective::kLowestLatency;
  const auto applied = controller.apply(request);
  ASSERT_TRUE(applied.ok());
  const std::string pinned_id = applied.value().chosen.summary.path_id;
  const auto pinned =
      scion::Path::parse_sequence(applied.value().chosen.summary.sequence);
  ASSERT_TRUE(pinned.ok());

  // Advance to an instant where the pinned path is revoked but at least
  // one other discovered path to the destination is live.
  const auto selection = selector.select(request);
  ASSERT_TRUE(selection.ok());
  bool found = false;
  for (int step = 0; step < 24 * 3600 / 5 && !found; ++step) {
    host.clock().advance(util::sim_seconds(5.0));
    const SimTime now = host.clock().now();
    if (!control_plane.path_revoked(pinned.value(), now)) continue;
    found = std::any_of(
        selection.value().ranked.begin(), selection.value().ranked.end(),
        [&](const select::RankedPath& candidate) {
          return candidate.summary.path_id != pinned_id &&
                 !control_plane.hops_revoked(candidate.summary.hops, now);
        });
  }
  ASSERT_TRUE(found) << "storm never revoked the pinned path with a live "
                        "alternative available";

  apps::PingOptions options;
  options.count = 5;
  const auto report = controller.ping(3, options);
  ASSERT_TRUE(report.ok())
      << "failover must absorb the revocation: " << report.error().message;
  EXPECT_EQ(controller.failovers(), 1u);
  const auto active = controller.active(3);
  ASSERT_TRUE(active.has_value());
  EXPECT_NE(active->chosen.summary.path_id, pinned_id)
      << "the intent must be re-pinned onto the alternative";
  EXPECT_EQ(report.value().path.sequence(), active->chosen.summary.sequence);
}

TEST(ControlPlaneChurn, KillThenResumeIsBitIdenticalUnderStorm) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  simnet::NetworkConfig net = storm_config();
  net.faults.garble_prob = 0.1;  // exercise retry alongside revocations
  // A server-down window can revoke *every* path of a unit, yielding an
  // empty batch that neither counts toward the crash trigger nor stores
  // samples; keep those rare so the kill lands mid-campaign.
  net.faults.server_down_per_hour = 0.5;
  measure::TestSuiteConfig config;
  config.iterations = 2;
  config.server_ids = {{3, 5}};

  const auto stats_snapshot = [](docdb::Database& db) {
    std::map<std::string, std::string> snapshot;
    db.collection(measure::kPathsStats)
        .for_each([&](const docdb::Document& doc) {
          snapshot.emplace(
              std::string(docdb::document_id(doc).value_or("")), doc.dump());
        });
    return snapshot;
  };

  // Reference: the same campaign, never interrupted.
  std::map<std::string, std::string> reference;
  std::string reference_cache;
  {
    apps::ScionHost host(env, 42, env.user_as, "10.0.8.1", net);
    docdb::Database db;
    measure::TestSuite suite(host, db, config);
    ASSERT_TRUE(suite.run().ok());
    reference = stats_snapshot(db);
    reference_cache = host.control_plane().checkpoint().dump();
    ASSERT_FALSE(reference.empty());
  }

  const std::string journal =
      (std::filesystem::temp_directory_path() / "churn_resume.jsonl").string();
  std::filesystem::remove(journal);

  // Crashed run: killed after the third committed batch.
  {
    auto opened = docdb::Database::open(journal);
    ASSERT_TRUE(opened.ok());
    apps::ScionHost host(env, 42, env.user_as, "10.0.8.1", net);
    measure::TestSuiteConfig crashing = config;
    crashing.crash_after_batches = 2;
    measure::TestSuite suite(host, *opened.value(), crashing);
    ASSERT_FALSE(suite.run().ok());
  }

  // Resume: fresh process, fresh host, fresh clock, fresh (empty) cache —
  // the checkpointed snapshots must rebuild the identical trajectory.
  {
    auto reopened = docdb::Database::open(journal);
    ASSERT_TRUE(reopened.ok());
    apps::ScionHost host(env, 42, env.user_as, "10.0.8.1", net);
    measure::TestSuiteConfig resuming = config;
    resuming.skip_collection = true;
    resuming.resume = true;
    measure::TestSuite suite(host, *reopened.value(), resuming);
    ASSERT_TRUE(suite.run().ok());
    EXPECT_GT(suite.progress().units_skipped, 0u);

    const std::map<std::string, std::string> resumed =
        stats_snapshot(*reopened.value());
    ASSERT_EQ(resumed.size(), reference.size());
    for (const auto& [id, json] : reference) {
      const auto it = resumed.find(id);
      ASSERT_NE(it, resumed.end()) << "missing document " << id;
      EXPECT_EQ(it->second, json) << "document " << id << " diverged";
    }
    EXPECT_EQ(host.control_plane().checkpoint().dump(), reference_cache)
        << "the resumed cache trajectory diverged from the uninterrupted run";
  }
  std::filesystem::remove(journal);
}

}  // namespace
}  // namespace upin
