// Crash-matrix property test: run a scripted mutation workload on a
// FaultVfs, crash at EVERY operation boundary, reopen, and assert the
// recovered database is a prefix-consistent cut of the workload's
// journal-record sequence:
//
//   * no committed-and-synced call is lost (cut >= committed marker),
//   * no phantom or reordered records (state == some model prefix),
//   * Database::open always succeeds on a crash image (a kernel leaves
//     torn tails, never mid-file corruption).
//
// The workload covers every mutation kind plus a compact() — so the
// matrix sweeps the temp-write / fsync / rename / dir-sync window where
// an unflushed rename must roll back to the old journal.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "docdb/database.hpp"
#include "docdb/vfs.hpp"

namespace upin::docdb {
namespace {

using util::Value;

/// One journal record the workload expects to exist, in enqueue order.
struct ModelRecord {
  std::string op;
  std::string coll;
  std::string id;
  std::string doc_dump;  ///< post-image dump (insert/update)
};

/// The workload's account of itself: the full record sequence and how
/// much of it is *guaranteed* durable (every record at or before the
/// marker was covered by a successfully-returned durability sync).
struct WorkloadTrace {
  std::vector<ModelRecord> model;
  std::size_t committed = 0;
};

/// collection -> id -> document dump.  Collections created but empty
/// still appear (create_collection replays as an empty collection).
using ModelState = std::map<std::string, std::map<std::string, std::string>>;

ModelState apply_prefix(const std::vector<ModelRecord>& model, std::size_t k) {
  ModelState state;
  for (std::size_t i = 0; i < k; ++i) {
    const ModelRecord& record = model[i];
    if (record.op == "create_collection") {
      state[record.coll];
    } else if (record.op == "insert" || record.op == "update") {
      state[record.coll][record.id] = record.doc_dump;
    } else if (record.op == "delete") {
      state[record.coll].erase(record.id);
    }
  }
  return state;
}

/// Scripted single-threaded workload.  Mirrors the exact journal-record
/// enqueue order into the trace and stops at the first failed call (the
/// crash).  Calls whose API propagates sync failures advance the
/// committed marker; delete_by_id (bool return) does not — its record
/// becomes guaranteed only once a later sync covers it.
void run_workload(Database& db, WorkloadTrace* trace) {
  auto insert = [&](const std::string& coll, const std::string& id,
                    int v, bool first_use_of_coll) {
    if (first_use_of_coll) {
      trace->model.push_back({"create_collection", coll, {}, {}});
    }
    const Document doc = Value::object({{"_id", id}, {"v", v}});
    trace->model.push_back({"insert", coll, id, doc.dump()});
    return db.collection(coll).insert_one(doc).ok();
  };

  if (!insert("paths", "p1", 1, /*first_use_of_coll=*/true)) return;
  trace->committed = trace->model.size();

  {
    std::vector<Document> batch;
    for (const auto& [id, v] : {std::pair{"p2", 2}, std::pair{"p3", 3}}) {
      const Document doc = Value::object({{"_id", id}, {"v", v}});
      trace->model.push_back({"insert", "paths", id, doc.dump()});
      batch.push_back(doc);
    }
    if (!db.collection("paths").insert_many(std::move(batch)).ok()) return;
    trace->committed = trace->model.size();
  }

  if (!insert("stats", "s1", 10, /*first_use_of_coll=*/true)) return;
  trace->committed = trace->model.size();

  {
    const auto filter =
        Filter::compile(Value::parse(R"({"_id": "p2"})").value()).value();
    const Document post = Value::object({{"_id", "p2"}, {"v", 42}});
    trace->model.push_back({"update", "paths", "p2", post.dump()});
    if (!db.collection("paths")
             .update_many(filter, Value::parse(R"({"$set": {"v": 42}})").value())
             .ok()) {
      return;
    }
    trace->committed = trace->model.size();
  }

  trace->model.push_back({"delete", "paths", "p1", {}});
  if (!db.collection("paths").delete_by_id("p1")) return;
  // No committed advance: delete_by_id's bool cannot report sync failure.

  if (!db.compact().ok()) return;
  // A successful compact leaves the journal equal to the live snapshot:
  // everything so far (the delete included) is durable.
  trace->committed = trace->model.size();

  if (!insert("paths", "p4", 4, /*first_use_of_coll=*/false)) return;
  trace->committed = trace->model.size();

  {
    std::vector<Document> batch;
    for (const auto& [id, v] : {std::pair{"s2", 20}, std::pair{"s3", 30}}) {
      const Document doc = Value::object({{"_id", id}, {"v", v}});
      trace->model.push_back({"insert", "stats", id, doc.dump()});
      batch.push_back(doc);
    }
    if (!db.collection("stats").insert_many(std::move(batch)).ok()) return;
    trace->committed = trace->model.size();
  }
}

ModelState capture(Database& db) {
  ModelState state;
  for (const std::string& name : db.collection_names()) {
    auto& docs = state[name];
    db.find_collection(name)->for_each([&](const Document& doc) {
      docs[std::string(document_id(doc).value_or(""))] = doc.dump();
    });
  }
  return state;
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("crash_matrix_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this))))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  std::string dir_;
};

TEST_F(CrashMatrixTest, EveryCrashPointRecoversAPrefixConsistentState) {
  // Probe run (fault-free FaultVfs) sizes the matrix.  The writer
  // thread's grouping makes the exact op count vary slightly between
  // runs, so sweep a few points past the probe: extra points are clean
  // runs and must recover the full final state.
  std::size_t probe_ops = 0;
  {
    FaultVfs probe_vfs;
    DatabaseOptions options;
    options.vfs = &probe_vfs;
    const std::string path = dir_ + "/probe.jsonl";
    WorkloadTrace trace;
    {
      auto opened = Database::open(path, options);
      ASSERT_TRUE(opened.ok());
      run_workload(*opened.value(), &trace);
    }
    ASSERT_FALSE(probe_vfs.crashed());
    ASSERT_EQ(trace.committed, trace.model.size())
        << "the fault-free workload must complete";
    probe_ops = probe_vfs.op_count();
    ASSERT_GT(probe_ops, 10u);
  }

  std::size_t crashed_runs = 0;
  for (std::size_t crash_at = 1; crash_at <= probe_ops + 4; ++crash_at) {
    SCOPED_TRACE("crash_at_op=" + std::to_string(crash_at));
    const std::string path =
        dir_ + "/crash_" + std::to_string(crash_at) + ".jsonl";

    FaultVfs vfs(FaultVfsConfig{.crash_at_op = crash_at});
    DatabaseOptions options;
    options.vfs = &vfs;
    WorkloadTrace trace;
    {
      auto opened = Database::open(path, options);
      // crash_at == 1 kills the journal's own open; the model is empty
      // and recovery must find an empty database.
      if (opened.ok()) run_workload(*opened.value(), &trace);
    }
    if (vfs.crashed()) ++crashed_runs;

    // Reopen the frozen files with the real filesystem, strict mode: a
    // crash image must never read as mid-file corruption.
    auto reopened = Database::open(path);
    ASSERT_TRUE(reopened.ok())
        << "recovery failed: " << reopened.error().message;
    const ModelState recovered = capture(*reopened.value());

    bool matched = false;
    for (std::size_t k = trace.committed; k <= trace.model.size(); ++k) {
      if (apply_prefix(trace.model, k) == recovered) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "recovered state is not a prefix-consistent cut: committed="
        << trace.committed << " total=" << trace.model.size()
        << " recovered_collections=" << recovered.size();
  }
  EXPECT_GT(crashed_runs, 10u) << "the matrix must actually exercise crashes";
}

TEST_F(CrashMatrixTest, CleanRunThroughFaultVfsMatchesFullModel) {
  // Baseline: the model itself is faithful — a run with no faults at
  // all recovers to exactly the final model state.
  FaultVfs vfs;
  DatabaseOptions options;
  options.vfs = &vfs;
  const std::string path = dir_ + "/clean.jsonl";
  WorkloadTrace trace;
  {
    auto opened = Database::open(path, options);
    ASSERT_TRUE(opened.ok());
    run_workload(*opened.value(), &trace);
  }
  auto reopened = Database::open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(capture(*reopened.value()),
            apply_prefix(trace.model, trace.model.size()));
}

}  // namespace
}  // namespace upin::docdb
