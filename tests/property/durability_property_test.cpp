// Property suites for durability and selection monotonicity.
#include <gtest/gtest.h>

#include <filesystem>

#include <map>

#include "apps/host.hpp"
#include "docdb/aggregate.hpp"
#include "docdb/database.hpp"
#include "measure/testsuite.hpp"
#include "select/selector.hpp"
#include "util/rng.hpp"

namespace upin {
namespace {

using docdb::Collection;
using docdb::Database;
using docdb::Document;
using util::Rng;
using util::Value;

// ----------------------------------------------- journal replay equivalence

/// Apply an identical random operation sequence to an in-memory database
/// and a journaled one; after reopening the journaled database, both must
/// hold exactly the same documents.  This is the crash-free half of the
/// §4.1.2 durability story (the crash half is the truncated-tail test in
/// journal_test.cpp).
class JournalEquivalenceProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

void random_operation(Rng& rng, Collection& coll, int& id_counter) {
  const auto choice = rng.uniform_int(0, 9);
  if (choice <= 4) {  // insert (most frequent)
    util::JsonObject doc;
    doc.set("_id", Value("d" + std::to_string(id_counter++)));
    doc.set("v", Value(rng.uniform_int(0, 20)));
    doc.set("w", Value(rng.uniform(0.0, 1.0)));
    (void)coll.insert_one(Value(std::move(doc)));
  } else if (choice <= 6 && id_counter > 0) {  // delete a random id
    const auto victim = rng.uniform_int(0, id_counter - 1);
    (void)coll.delete_by_id("d" + std::to_string(victim));
  } else if (choice == 7) {  // batch insert
    std::vector<Document> batch;
    for (int i = 0; i < 3; ++i) {
      util::JsonObject doc;
      doc.set("_id", Value("d" + std::to_string(id_counter++)));
      doc.set("v", Value(rng.uniform_int(0, 20)));
      batch.push_back(Value(std::move(doc)));
    }
    (void)coll.insert_many(std::move(batch));
  } else {  // update a slice
    util::JsonObject query;
    query.set("v", Value(rng.uniform_int(0, 20)));
    const auto filter = docdb::Filter::compile(Value(std::move(query)));
    util::JsonObject set;
    util::JsonObject fields;
    fields.set("touched", Value(true));
    set.set("$set", Value(std::move(fields)));
    (void)coll.update_many(filter.value(), Value(std::move(set)));
  }
}

TEST_P(JournalEquivalenceProperty, ReplayedStateMatchesInMemory) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("journal_prop_" + std::to_string(GetParam()) + ".jsonl"))
          .string();
  std::filesystem::remove(path);

  Database memory;
  std::vector<Document> expected;
  {
    auto durable = Database::open(path);
    ASSERT_TRUE(durable.ok());
    Rng rng_memory(GetParam());
    Rng rng_durable(GetParam());
    int id_memory = 0;
    int id_durable = 0;
    for (int i = 0; i < 120; ++i) {
      random_operation(rng_memory, memory.collection("c"), id_memory);
      random_operation(rng_durable, durable.value()->collection("c"),
                       id_durable);
    }
  }

  auto reopened = Database::open(path);
  ASSERT_TRUE(reopened.ok());
  Collection& replayed = reopened.value()->collection("c");
  Collection& reference = memory.collection("c");
  ASSERT_EQ(replayed.size(), reference.size());
  reference.for_each([&](const Document& doc) {
    const auto id = docdb::document_id(doc);
    ASSERT_TRUE(id.has_value());
    const auto twin = replayed.find_by_id(*id);
    ASSERT_TRUE(twin.ok()) << "missing " << *id;
    EXPECT_EQ(twin.value(), doc);
  });
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalEquivalenceProperty,
                         ::testing::Values(3, 17, 58, 101, 999));

// ----------------------------------------- aggregation-vs-manual property

/// $group with $avg/$sum/$count must agree with a hand-rolled group-by
/// over randomly generated documents.
class AggregationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregationProperty, GroupMatchesManualComputation) {
  Rng rng(GetParam());
  Collection coll("c");
  std::map<std::int64_t, std::pair<double, std::size_t>> manual;  // key -> (sum, n)
  const auto docs = rng.uniform_int(1, 200);
  for (std::int64_t i = 0; i < docs; ++i) {
    const std::int64_t key = rng.uniform_int(0, 6);
    const double value = rng.uniform(-50.0, 50.0);
    util::JsonObject doc;
    doc.set("_id", Value("d" + std::to_string(i)));
    doc.set("k", Value(key));
    doc.set("v", Value(value));
    ASSERT_TRUE(coll.insert_one(Value(std::move(doc))).ok());
    manual[key].first += value;
    ++manual[key].second;
  }

  const auto result = docdb::aggregate(
      coll, Value::parse(R"([
        {"$group": {"_id": "$k", "avg": {"$avg": "$v"},
                    "sum": {"$sum": "$v"}, "n": {"$count": {}}}},
        {"$sort": {"_id": 1}}
      ])").value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), manual.size());
  std::size_t index = 0;
  for (const auto& [key, sums] : manual) {
    const Document& group = result.value()[index++];
    EXPECT_EQ(group.get("_id")->as_int(), key);
    EXPECT_EQ(group.get("n")->as_int(),
              static_cast<std::int64_t>(sums.second));
    EXPECT_NEAR(group.get("sum")->as_double(), sums.first, 1e-9);
    EXPECT_NEAR(group.get("avg")->as_double(),
                sums.first / static_cast<double>(sums.second), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationProperty,
                         ::testing::Values(5, 25, 125, 625));

// -------------------------------------------- selection monotonicity laws

/// Adding a constraint can only shrink the admissible set, and the
/// admissible sets of a stricter request are subsets of the looser one's.
class SelectorMonotonicityProperty : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    env_ = new scion::ScionlabEnv(scion::scionlab_topology());
    db_ = new Database();
    apps::ScionHost host(*env_, 42, env_->user_as, "10.0.8.1");
    measure::TestSuiteConfig config;
    config.iterations = 5;
    config.server_ids = {{1, 2, 3, 4, 5}};
    measure::TestSuite suite(host, *db_, config);
    ASSERT_TRUE(suite.run().ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete env_;
    db_ = nullptr;
    env_ = nullptr;
  }
  static scion::ScionlabEnv* env_;
  static Database* db_;
};

scion::ScionlabEnv* SelectorMonotonicityProperty::env_ = nullptr;
Database* SelectorMonotonicityProperty::db_ = nullptr;

std::set<std::string> admissible(const select::PathSelector& selector,
                                 const select::UserRequest& request) {
  std::set<std::string> ids;
  const auto selection = selector.select(request);
  EXPECT_TRUE(selection.ok());
  if (selection.ok()) {
    for (const auto& ranked : selection.value().ranked) {
      ids.insert(ranked.summary.path_id);
    }
  }
  return ids;
}

bool is_subset(const std::set<std::string>& small,
               const std::set<std::string>& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

TEST_P(SelectorMonotonicityProperty, ConstraintsOnlyShrinkTheSet) {
  const select::PathSelector selector(*db_, env_->topology);
  const int server_id = GetParam();

  select::UserRequest loose;
  loose.server_id = server_id;
  const auto all = admissible(selector, loose);
  ASSERT_FALSE(all.empty());

  // Single constraints.
  for (const auto& constrain :
       std::vector<std::function<void(select::UserRequest&)>>{
           [](auto& r) { r.max_latency_ms = 100.0; },
           [](auto& r) { r.max_loss_pct = 1.0; },
           [](auto& r) { r.max_jitter_ms = 1.0; },
           [](auto& r) { r.exclude_countries = {"US"}; },
           [](auto& r) { r.exclude_countries = {"SG"}; },
           [](auto& r) { r.exclude_isds = {19}; },
           [](auto& r) { r.min_samples = 5; },
       }) {
    select::UserRequest strict = loose;
    constrain(strict);
    const auto subset = admissible(selector, strict);
    EXPECT_TRUE(is_subset(subset, all));

    // Composition with a second constraint shrinks further.
    select::UserRequest stricter = strict;
    stricter.max_latency_ms = 60.0;
    EXPECT_TRUE(is_subset(admissible(selector, stricter), subset));
  }
}

TEST_P(SelectorMonotonicityProperty, RankedPlusRejectedIsTotal) {
  const select::PathSelector selector(*db_, env_->topology);
  select::UserRequest request;
  request.server_id = GetParam();
  request.max_latency_ms = 120.0;
  request.exclude_countries = {"US"};
  const auto selection = selector.select(request);
  ASSERT_TRUE(selection.ok());
  const auto summaries = selector.summarize(GetParam());
  ASSERT_TRUE(summaries.ok());
  EXPECT_EQ(selection.value().ranked.size() + selection.value().rejected.size(),
            summaries.value().size());
}

INSTANTIATE_TEST_SUITE_P(FeaturedServers, SelectorMonotonicityProperty,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace upin
