// Property-based suites (parameterized gtest): invariants that must hold
// across whole input families, not just hand-picked cases.
#include <gtest/gtest.h>

#include "apps/bwspec.hpp"
#include "apps/host.hpp"
#include "docdb/filter.hpp"
#include "util/strings.hpp"
#include "scion/beacon.hpp"
#include "scion/scionlab.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace upin {
namespace {

using util::Rng;
using util::Value;

// ---------------------------------------------------------- JSON round trip

/// Generate a random JSON value of bounded depth from a seeded Rng.
Value random_value(Rng& rng, int depth) {
  const std::int64_t kind = rng.uniform_int(0, depth > 0 ? 6 : 4);
  switch (kind) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.bernoulli(0.5));
    case 2: return Value(rng.uniform_int(-1'000'000, 1'000'000));
    case 3: return Value(rng.uniform(-1e6, 1e6));
    case 4: {
      std::string text;
      const auto length = rng.uniform_int(0, 12);
      for (std::int64_t i = 0; i < length; ++i) {
        text.push_back(static_cast<char>(rng.uniform_int(32, 126)));
      }
      return Value(text);
    }
    case 5: {
      Value::Array array;
      const auto length = rng.uniform_int(0, 4);
      for (std::int64_t i = 0; i < length; ++i) {
        array.push_back(random_value(rng, depth - 1));
      }
      return Value(std::move(array));
    }
    default: {
      util::JsonObject object;
      const auto fields = rng.uniform_int(0, 4);
      for (std::int64_t i = 0; i < fields; ++i) {
        object.set("k" + std::to_string(i), random_value(rng, depth - 1));
      }
      return Value(std::move(object));
    }
  }
}

class JsonRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTripProperty, ParseOfDumpIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value original = random_value(rng, 3);
    const auto compact = Value::parse(original.dump());
    ASSERT_TRUE(compact.ok()) << original.dump();
    EXPECT_EQ(compact.value(), original);
    const auto pretty = Value::parse(original.dump(2));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty.value(), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------- filter/order consistency

class FilterOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterOrderProperty, ComparisonOperatorsAgreeWithCompareValues) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const double pivot = rng.uniform(-100, 100);
    const double sample = rng.uniform(-100, 100);
    const Value query_gt = Value::object(
        {{"x", Value::object({{"$gt", pivot}})}});
    const Value query_lte = Value::object(
        {{"x", Value::object({{"$lte", pivot}})}});
    const auto gt = docdb::Filter::compile(query_gt).value();
    const auto lte = docdb::Filter::compile(query_lte).value();
    const Value doc = Value::object({{"x", sample}});
    // Exactly one of the two matches: $gt and $lte partition the line.
    EXPECT_NE(gt.matches(doc), lte.matches(doc));
    EXPECT_EQ(gt.matches(doc),
              docdb::compare_values(Value(sample), Value(pivot)) > 0);
  }
}

TEST_P(FilterOrderProperty, CompareValuesIsATotalOrder) {
  Rng rng(GetParam());
  std::vector<Value> values;
  for (int i = 0; i < 20; ++i) values.push_back(random_value(rng, 1));
  for (const Value& a : values) {
    EXPECT_EQ(docdb::compare_values(a, a), 0);
    for (const Value& b : values) {
      EXPECT_EQ(docdb::compare_values(a, b), -docdb::compare_values(b, a));
      for (const Value& c : values) {
        // Transitivity of <=.
        if (docdb::compare_values(a, b) <= 0 &&
            docdb::compare_values(b, c) <= 0) {
          EXPECT_LE(docdb::compare_values(a, c), 0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterOrderProperty,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------- quantile properties

class QuantileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileProperty, BoundedMonotoneAndStableUnderShuffle) {
  Rng rng(GetParam());
  std::vector<double> samples;
  const auto n = rng.uniform_int(1, 200);
  for (std::int64_t i = 0; i < n; ++i) samples.push_back(rng.normal(50, 20));

  const double lo = *std::min_element(samples.begin(), samples.end());
  const double hi = *std::max_element(samples.begin(), samples.end());
  double previous = lo;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const double value = util::quantile(samples, q);
    EXPECT_GE(value, lo);
    EXPECT_LE(value, hi);
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }

  std::vector<double> shuffled = samples;
  rng.shuffle(shuffled);
  EXPECT_DOUBLE_EQ(util::quantile(samples, 0.37),
                   util::quantile(shuffled, 0.37));
}

TEST_P(QuantileProperty, BoxStatsInvariants) {
  Rng rng(GetParam() ^ 0xbeef);
  std::vector<double> samples;
  const auto n = rng.uniform_int(1, 150);
  for (std::int64_t i = 0; i < n; ++i) {
    samples.push_back(rng.pareto(1.0, 1.5));  // heavy tail -> outliers
  }
  const util::BoxStats box = util::box_stats(samples);
  EXPECT_LE(box.minimum, box.whisker_low);
  EXPECT_LE(box.whisker_low, box.q1 + 1e-12);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3 - 1e-12, box.whisker_high);
  EXPECT_LE(box.whisker_high, box.maximum);
  // Every outlier lies strictly outside the fences.
  for (const double outlier : box.outliers) {
    EXPECT_TRUE(outlier < box.q1 - 1.5 * box.iqr ||
                outlier > box.q3 + 1.5 * box.iqr);
  }
  // Count conservation: outliers + whisker-range samples == all samples.
  std::size_t inside = 0;
  for (const double s : samples) {
    if (s >= box.whisker_low && s <= box.whisker_high) ++inside;
  }
  EXPECT_EQ(inside + box.outliers.size(), samples.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Values(7, 14, 28, 56, 112));

// ---------------------------------------------------------- bwspec algebra

struct BwCase {
  double duration;
  double size;
  double mbps;
};

class BwSpecProperty : public ::testing::TestWithParam<BwCase> {};

TEST_P(BwSpecProperty, WildcardResolutionIsConsistent) {
  const BwCase param = GetParam();
  const std::string spec_text = util::format("%g,%g,?,%gMbps", param.duration,
                                             param.size, param.mbps);
  const auto spec = apps::BwSpec::parse(spec_text);
  ASSERT_TRUE(spec.ok()) << spec_text;
  const auto resolved = spec.value().resolve(1452.0);
  ASSERT_TRUE(resolved.ok()) << spec_text;
  const apps::BwSpec& s = resolved.value();
  // count*size*8/duration within one packet of the requested bandwidth.
  const double bits_short =
      *s.target_mbps * 1e6 * *s.duration_s - *s.packet_count * *s.packet_bytes * 8.0;
  EXPECT_GE(bits_short, -1e-6);
  EXPECT_LT(bits_short, *s.packet_bytes * 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BwSpecProperty,
    ::testing::Values(BwCase{3, 64, 12}, BwCase{3, 1452, 12},
                      BwCase{3, 64, 150}, BwCase{3, 1452, 150},
                      BwCase{5, 100, 150}, BwCase{10, 4, 0.1},
                      BwCase{1, 1000, 1000}, BwCase{2.5, 750, 33.3}));

// --------------------------------------------------- path-combination laws

class BeaconProperty : public ::testing::TestWithParam<int> {
 protected:
  static const scion::ScionlabEnv& env() {
    static const scion::ScionlabEnv instance = scion::scionlab_topology();
    return instance;
  }
  static const scion::Beaconing& beacons() {
    static const scion::Beaconing instance(env().topology);
    return instance;
  }
};

TEST_P(BeaconProperty, PathsToEveryServerAreWellFormed) {
  const int server_id = GetParam();
  const scion::SnetAddress& server =
      env().servers[static_cast<std::size_t>(server_id - 1)];
  const auto paths = beacons().paths(env().user_as, server.ia);
  ASSERT_FALSE(paths.empty()) << "unreachable server " << server_id;

  std::set<std::string> sequences;
  std::size_t previous_hops = 0;
  for (const scion::Path& path : paths) {
    // Endpoints.
    EXPECT_EQ(path.source(), env().user_as);
    EXPECT_EQ(path.destination(), server.ia);
    // Loop freedom.
    std::set<scion::IsdAsn> seen;
    for (const scion::PathHop& hop : path.hops()) {
      EXPECT_TRUE(seen.insert(hop.ia).second);
    }
    // Every consecutive pair is an actual link.
    for (std::size_t i = 0; i + 1 < path.hops().size(); ++i) {
      EXPECT_NE(env().topology.find_link(path.hops()[i].ia,
                                         path.hops()[i + 1].ia),
                nullptr);
    }
    // MTU positive, static latency non-negative.
    EXPECT_GT(path.mtu(), 0.0);
    EXPECT_GE(path.static_latency().count(), 0);
    // Ranking and uniqueness.
    EXPECT_GE(path.hop_count(), previous_hops);
    previous_hops = path.hop_count();
    EXPECT_TRUE(sequences.insert(path.sequence()).second);
    // Sequence round-trips through the parser.
    const auto reparsed = scion::Path::parse_sequence(path.sequence());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value().hops(), path.hops());
  }
}

INSTANTIATE_TEST_SUITE_P(AllServers, BeaconProperty,
                         ::testing::Range(1, 22));  // server ids 1..21

// ------------------------------------------------------ bwtest monotonicity

class BwtestProperty : public ::testing::TestWithParam<double> {};

TEST_P(BwtestProperty, AchievedBoundedAndMonotoneInCapacity) {
  const double packet_bytes = GetParam();
  double previous_achieved = 0.0;
  for (const double capacity : {5.0, 15.0, 45.0, 135.0, 400.0}) {
    simnet::Network net(42);
    const auto a = net.add_node({"A", {52.4, 4.9}});
    const auto b = net.add_node({"B", {50.1, 8.7}});
    ASSERT_TRUE(net.add_duplex(a, b, capacity, capacity, 0.1).ok());
    simnet::BwtestOptions options;
    options.packet_bytes = packet_bytes;
    options.target_mbps = 150.0;
    const auto result = net.bwtest({a, b}, options, util::SimTime::zero());
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().achieved_mbps, 0.0);
    EXPECT_LE(result.value().achieved_mbps, result.value().attempted_mbps);
    EXPECT_LE(result.value().attempted_mbps, 150.0 + 1e-9);
    // More capacity can only help (up to measurement noise).
    EXPECT_GE(result.value().achieved_mbps, previous_achieved * 0.9);
    previous_achieved = result.value().achieved_mbps;
  }
}

INSTANTIATE_TEST_SUITE_P(PacketSizes, BwtestProperty,
                         ::testing::Values(64.0, 256.0, 750.0, 1452.0));

// ----------------------------------------------------- campaign determinism

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, SameSeedSameMeasurements) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host_a(env, GetParam(), env.user_as, "10.0.8.1");
  apps::ScionHost host_b(env, GetParam(), env.user_as, "10.0.8.1");
  const scion::SnetAddress ireland{scion::scionlab::kIreland, "172.31.43.7"};

  const auto ping_a = host_a.ping(ireland, {});
  const auto ping_b = host_b.ping(ireland, {});
  ASSERT_TRUE(ping_a.ok());
  ASSERT_TRUE(ping_b.ok());
  EXPECT_EQ(ping_a.value().stats.rtt_ms, ping_b.value().stats.rtt_ms);

  apps::BwtestOptions bw;
  bw.cs_spec = "3,MTU,?,12Mbps";
  const auto bw_a = host_a.bwtestclient(ireland, bw);
  const auto bw_b = host_b.bwtestclient(ireland, bw);
  ASSERT_TRUE(bw_a.ok());
  ASSERT_TRUE(bw_b.ok());
  EXPECT_DOUBLE_EQ(bw_a.value().client_to_server.achieved_mbps,
                   bw_b.value().client_to_server.achieved_mbps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(1, 42, 1234, 987654321));

}  // namespace
}  // namespace upin
