// Planner equivalence property: for generated documents, index
// declarations, filters and find options, the planner-chosen execution
// and a forced collection scan must return identical ordered results —
// same documents, same order, same counts, same distinct values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "docdb/collection.hpp"
#include "docdb/filter.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace upin {
namespace {

using docdb::Collection;
using docdb::Filter;
using docdb::FindOptions;
using util::Rng;
using util::Value;

constexpr const char* kFields[] = {"a", "b", "c"};

Value random_scalar(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.bernoulli(0.5));
    case 2: return Value(rng.uniform_int(0, 9));
    // Halves collide with the ints half the time — exercises the
    // int/double key folding.
    case 3: return Value(static_cast<double>(rng.uniform_int(0, 18)) / 2.0);
    default: return Value("s" + std::to_string(rng.uniform_int(0, 5)));
  }
}

Value random_field_value(Rng& rng) {
  if (rng.bernoulli(0.15)) {  // arrays drive the multikey machinery
    Value::Array array;
    const std::int64_t n = rng.uniform_int(0, 3);
    for (std::int64_t i = 0; i < n; ++i) array.push_back(random_scalar(rng));
    return Value(std::move(array));
  }
  return random_scalar(rng);
}

Value random_query(Rng& rng) {
  util::JsonObject query;
  const std::int64_t clauses = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < clauses; ++i) {
    const std::string field = kFields[rng.uniform_int(0, 2)];
    const std::int64_t op = rng.uniform_int(0, 7);
    if (op == 0) {
      query.set(field, random_field_value(rng));
      continue;
    }
    util::JsonObject block;
    switch (op) {
      case 1: block.set("$eq", random_scalar(rng)); break;
      case 2: block.set("$gt", random_scalar(rng)); break;
      case 3: block.set("$gte", random_scalar(rng)); break;
      case 4: block.set("$lt", random_scalar(rng)); break;
      case 5: block.set("$lte", random_scalar(rng)); break;
      case 6: {
        Value::Array in;
        const std::int64_t n = rng.uniform_int(0, 3);
        for (std::int64_t j = 0; j < n; ++j) in.push_back(random_scalar(rng));
        block.set("$in", Value(std::move(in)));
        break;
      }
      default: block.set("$ne", random_scalar(rng)); break;
    }
    // Mixed windows ($gte + $lt on one field) probe bound intersection.
    if (op >= 2 && op <= 5 && rng.bernoulli(0.35)) {
      block.set(rng.bernoulli(0.5) ? "$lt" : "$gte", random_scalar(rng));
    }
    query.set(field, Value(std::move(block)));
  }
  return Value(std::move(query));
}

std::string options_label(const FindOptions& options) {
  std::string label = "sort_by=" + options.sort_by;
  label += options.descending ? " desc" : " asc";
  label += " skip=" + std::to_string(options.skip);
  if (options.limit.has_value()) {
    label += " limit=" + std::to_string(*options.limit);
  }
  return label;
}

class QueryPlanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryPlanProperty, PlannedAndScannedExecutionAgree) {
  Rng rng(GetParam());
  Collection coll("stats");

  // Random index declarations, including compound ones.
  for (const char* spec : {"a", "b", "c", "a,b", "b,c"}) {
    if (rng.bernoulli(0.5)) coll.create_index(spec);
  }

  const std::int64_t docs = rng.uniform_int(60, 180);
  for (std::int64_t i = 0; i < docs; ++i) {
    util::JsonObject d;
    for (const char* field : kFields) {
      if (!rng.bernoulli(0.15)) d.set(field, random_field_value(rng));
    }
    ASSERT_TRUE(coll.insert_one(Value(std::move(d))).ok());
  }
  // Churn exercises index maintenance under the same invariant.
  for (int round = 0; round < 2; ++round) {
    const auto to_delete = Filter::compile(random_query(rng));
    ASSERT_TRUE(to_delete.ok());
    (void)coll.delete_many(to_delete.value());
    const auto to_update = Filter::compile(random_query(rng));
    ASSERT_TRUE(to_update.ok());
    util::JsonObject set;
    set.set(kFields[rng.uniform_int(0, 2)], random_field_value(rng));
    util::JsonObject update;
    update.set("$set", Value(std::move(set)));
    ASSERT_TRUE(coll.update_many(to_update.value(), Value(std::move(update))).ok());
  }

  for (int q = 0; q < 25; ++q) {
    const Value query = random_query(rng);
    const auto compiled = Filter::compile(query);
    ASSERT_TRUE(compiled.ok()) << query.dump();
    const Filter& filter = compiled.value();

    FindOptions options;
    if (rng.bernoulli(0.6)) {
      options.sort_by = kFields[rng.uniform_int(0, 2)];
      options.descending = rng.bernoulli(0.5);
    }
    if (rng.bernoulli(0.4)) {
      options.skip = static_cast<std::size_t>(rng.uniform_int(0, 5));
    }
    if (rng.bernoulli(0.5)) {
      options.limit = static_cast<std::size_t>(rng.uniform_int(0, 20));
    }
    FindOptions forced = options;
    forced.force_scan = true;

    const std::string context =
        query.dump() + " [" + options_label(options) + "] plan=" +
        coll.explain(filter, options).dump();
    const auto planned = coll.find(filter, options);
    const auto scanned = coll.find(filter, forced);
    ASSERT_EQ(planned.size(), scanned.size()) << context;
    for (std::size_t i = 0; i < planned.size(); ++i) {
      ASSERT_EQ(planned[i], scanned[i]) << context << " position " << i;
    }

    // count() agrees with an unlimited forced scan.
    FindOptions scan_all;
    scan_all.force_scan = true;
    EXPECT_EQ(coll.count(filter), coll.find(filter, scan_all).size())
        << context;

    // distinct() agrees across paths, order included (both ascending).
    const char* field = kFields[rng.uniform_int(0, 2)];
    const std::vector<Value> fast = coll.distinct(field, filter);
    std::vector<Value> slow;
    for (const docdb::Document& d : coll.find(filter, scan_all)) {
      const Value* v = d.get_path(field);
      if (v == nullptr) continue;
      if (v->is_array()) {
        for (const Value& element : v->as_array()) slow.push_back(element);
      } else {
        slow.push_back(*v);
      }
    }
    std::sort(slow.begin(), slow.end(), [](const Value& a, const Value& b) {
      return docdb::compare_values(a, b) < 0;
    });
    slow.erase(std::unique(slow.begin(), slow.end(),
                           [](const Value& a, const Value& b) {
                             return docdb::compare_values(a, b) == 0;
                           }),
               slow.end());
    ASSERT_EQ(fast.size(), slow.size()) << context << " distinct " << field;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(docdb::compare_values(fast[i], slow[i]), 0)
          << context << " distinct " << field << " position " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPlanProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace upin
