// Axiomatic properties of path-selection strategies (ISSUE 9 §tests):
// over randomized synthetic summaries and requests, every registered
// strategy must satisfy
//   (1) appending a strictly-worse clone of the winner never changes the
//       winner,
//   (2) duplicating the winner keeps the original first and preserves the
//       relative order of the original paths (ranking is stable), and
//   (3) no admitted path ever violates the request's hard constraints
//       (sovereignty, ISD policy, performance bounds) — the invariant the
//       registry contract promises for all strategies, checked over 1000
//       randomized requests.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scion/scionlab.hpp"
#include "select/strategy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace upin::select {
namespace {

/// Synthetic path over the real testbed topology: user AS -> ETHZ-AP ->
/// a random walk over cores -> the destination.  Metrics are drawn from
/// ranges wide enough to exercise every constraint branch.
PathSummary random_summary(util::Rng& rng, const scion::Topology& topology,
                           int index) {
  PathSummary summary;
  summary.path_id = "syn-" + std::to_string(index);
  summary.server_id = 3;
  summary.hops.push_back(scion::scionlab::kUserAs);
  summary.hops.push_back(scion::scionlab::kEthzAp);
  const std::vector<scion::AsInfo>& ases = topology.ases();
  const std::int64_t extra = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < extra; ++i) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ases.size()) - 1));
    summary.hops.push_back(ases[pick].ia);
  }
  summary.hop_count = summary.hops.size();
  for (const scion::IsdAsn& hop : summary.hops) {
    const auto isd = static_cast<std::int64_t>(hop.isd());
    if (std::find(summary.isds.begin(), summary.isds.end(), isd) ==
        summary.isds.end()) {
      summary.isds.push_back(isd);
    }
  }
  summary.mtu = 1452.0;
  summary.samples = static_cast<std::size_t>(rng.uniform_int(0, 8));
  if (rng.bernoulli(0.9)) {
    std::vector<double> latencies;
    const std::int64_t n = rng.uniform_int(2, 8);
    for (std::int64_t i = 0; i < n; ++i) {
      latencies.push_back(rng.uniform(5.0, 400.0));
    }
    summary.latency_ms = util::box_stats(latencies);
    summary.latency_samples = latencies.size();
  }
  summary.mean_loss_pct = rng.uniform(0.0, 12.0);
  if (rng.bernoulli(0.9)) summary.mean_jitter_ms = rng.uniform(0.0, 20.0);
  if (rng.bernoulli(0.9)) {
    summary.mean_bw_down_mtu = rng.uniform(1.0, 40.0);
    summary.mean_bw_up_mtu = rng.uniform(1.0, 14.0);
    summary.mean_bw_down_64 = rng.uniform(0.5, 5.0);
    summary.mean_bw_up_64 = rng.uniform(0.5, 5.0);
  }
  return summary;
}

UserRequest random_request(util::Rng& rng) {
  UserRequest request;
  request.server_id = 3;
  switch (rng.uniform_int(0, 3)) {
    case 0: request.objective = Objective::kLowestLatency; break;
    case 1: request.objective = Objective::kHighestBandwidth; break;
    case 2: request.objective = Objective::kLowestLoss; break;
    default: request.objective = Objective::kMostConsistent; break;
  }
  request.bw_direction =
      rng.bernoulli(0.5) ? BwDirection::kDownstream : BwDirection::kUpstream;
  if (rng.bernoulli(0.3)) request.max_latency_ms = rng.uniform(20.0, 300.0);
  if (rng.bernoulli(0.3)) request.min_bandwidth_mbps = rng.uniform(1.0, 30.0);
  if (rng.bernoulli(0.3)) request.max_loss_pct = rng.uniform(0.5, 8.0);
  if (rng.bernoulli(0.3)) request.max_jitter_ms = rng.uniform(1.0, 15.0);
  if (rng.bernoulli(0.3)) {
    request.min_samples = static_cast<std::size_t>(rng.uniform_int(1, 6));
  }
  if (rng.bernoulli(0.25)) request.exclude_countries = {"US"};
  if (rng.bernoulli(0.25)) request.exclude_operators = {"AWS"};
  if (rng.bernoulli(0.2)) request.exclude_ases = {scion::scionlab::kSingapore};
  if (rng.bernoulli(0.2)) request.exclude_isds = {19};
  if (rng.bernoulli(0.15)) request.allowed_isds = {16, 17};
  if (rng.bernoulli(0.2)) request.bw_probe_bytes = 64.0;
  return request;
}

/// A clone of `winner` that is strictly worse on every metric a strategy
/// could score by: slower, lossier, jitterier, less bandwidth, same hops.
PathSummary strictly_worse_clone(const PathSummary& winner) {
  PathSummary clone = winner;
  clone.path_id = winner.path_id + "-worse";
  if (clone.latency_ms.has_value()) {
    util::BoxStats& box = *clone.latency_ms;
    box.minimum += 50.0;
    box.maximum += 200.0;
    box.mean += 100.0;
    box.q1 += 60.0;
    box.median += 100.0;
    box.q3 += 160.0;
    box.iqr = box.q3 - box.q1;  // grows by 100
    box.whisker_low += 60.0;
    box.whisker_high += 200.0;
  }
  clone.mean_loss_pct += 5.0;
  if (clone.mean_jitter_ms.has_value()) *clone.mean_jitter_ms += 10.0;
  const auto halve = [](std::optional<double>& bw) {
    if (bw.has_value()) *bw /= 2.0;
  };
  halve(clone.mean_bw_down_mtu);
  halve(clone.mean_bw_up_mtu);
  halve(clone.mean_bw_down_64);
  halve(clone.mean_bw_up_64);
  return clone;
}

class StrategyAxiomsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new scion::ScionlabEnv(scion::scionlab_topology());
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  [[nodiscard]] static SelectionContext context() {
    return SelectionContext{&env_->topology, nullptr, nullptr};
  }

  static scion::ScionlabEnv* env_;
};

scion::ScionlabEnv* StrategyAxiomsTest::env_ = nullptr;

TEST_F(StrategyAxiomsTest, StrictlyWorseCloneNeverBecomesTheWinner) {
  util::Rng rng(0xA1);
  for (const std::string& key : StrategyRegistry::global().keys()) {
    auto strategy = StrategyRegistry::global().create(key);
    ASSERT_TRUE(strategy.ok()) << key;
    util::Rng stream = rng.fork(key);
    for (int round = 0; round < 200; ++round) {
      std::vector<PathSummary> pool;
      for (int i = 0; i < 6; ++i) {
        pool.push_back(random_summary(stream, env_->topology, i));
      }
      const UserRequest request = random_request(stream);
      const Selection before =
          strategy.value()->rank(pool, request, context());
      if (before.ranked.empty()) continue;
      const std::string winner = before.ranked.front().summary.path_id;

      pool.push_back(strictly_worse_clone(before.ranked.front().summary));
      const Selection after = strategy.value()->rank(pool, request, context());
      ASSERT_FALSE(after.ranked.empty()) << key;
      EXPECT_EQ(after.ranked.front().summary.path_id, winner)
          << key << " round " << round << ": a strictly worse clone of the "
          << "winner displaced it (" << request.describe() << ")";
    }
  }
}

TEST_F(StrategyAxiomsTest, DuplicatingTheWinnerLeavesTheRankingStable) {
  util::Rng rng(0xB2);
  for (const std::string& key : StrategyRegistry::global().keys()) {
    auto strategy = StrategyRegistry::global().create(key);
    ASSERT_TRUE(strategy.ok()) << key;
    util::Rng stream = rng.fork(key);
    for (int round = 0; round < 200; ++round) {
      std::vector<PathSummary> pool;
      for (int i = 0; i < 6; ++i) {
        pool.push_back(random_summary(stream, env_->topology, i));
      }
      const UserRequest request = random_request(stream);
      const Selection before =
          strategy.value()->rank(pool, request, context());
      if (before.ranked.empty()) continue;

      PathSummary dup = before.ranked.front().summary;
      dup.path_id += "-dup";
      pool.push_back(std::move(dup));
      const Selection after = strategy.value()->rank(pool, request, context());

      ASSERT_FALSE(after.ranked.empty()) << key;
      EXPECT_EQ(after.ranked.front().summary.path_id,
                before.ranked.front().summary.path_id)
          << key << " round " << round
          << ": the duplicate overtook the original winner";
      // The original paths keep their relative order.
      std::vector<std::string> original_order;
      for (const RankedPath& path : after.ranked) {
        const std::string& id = path.summary.path_id;
        if (id.size() < 4 || id.substr(id.size() - 4) != "-dup") {
          original_order.push_back(id);
        }
      }
      ASSERT_EQ(original_order.size(), before.ranked.size()) << key;
      for (std::size_t i = 0; i < original_order.size(); ++i) {
        EXPECT_EQ(original_order[i], before.ranked[i].summary.path_id)
            << key << " round " << round << " position " << i;
      }
    }
  }
}

TEST_F(StrategyAxiomsTest, AdmittedPathsNeverViolateHardConstraints) {
  util::Rng rng(0xC3);
  const std::vector<std::string> keys = StrategyRegistry::global().keys();
  int checked = 0;
  for (int round = 0; round < 1000; ++round) {
    util::Rng stream = rng.fork("round:" + std::to_string(round));
    std::vector<PathSummary> pool;
    for (int i = 0; i < 5; ++i) {
      pool.push_back(random_summary(stream, env_->topology, i));
    }
    const UserRequest request = random_request(stream);
    const std::string& key = keys[static_cast<std::size_t>(round) % keys.size()];
    auto strategy = StrategyRegistry::global().create(key);
    ASSERT_TRUE(strategy.ok()) << key;
    const Selection selection =
        strategy.value()->rank(pool, request, context());

    for (const RankedPath& path : selection.ranked) {
      ++checked;
      const PathSummary& s = path.summary;
      EXPECT_GE(s.samples, request.min_samples) << key;
      for (const scion::IsdAsn& hop : s.hops) {
        const scion::AsInfo* info = env_->topology.find_as(hop);
        if (info != nullptr) {
          for (const std::string& country : request.exclude_countries) {
            EXPECT_NE(info->country, country) << key << " " << s.path_id;
          }
          for (const std::string& op : request.exclude_operators) {
            EXPECT_NE(info->operator_name, op) << key << " " << s.path_id;
          }
        }
        EXPECT_EQ(std::count(request.exclude_ases.begin(),
                             request.exclude_ases.end(), hop),
                  0)
            << key << " " << s.path_id;
      }
      for (const std::int64_t isd : s.isds) {
        EXPECT_EQ(std::count(request.exclude_isds.begin(),
                             request.exclude_isds.end(),
                             static_cast<std::uint16_t>(isd)),
                  0)
            << key << " " << s.path_id;
        if (!request.allowed_isds.empty()) {
          EXPECT_NE(std::count(request.allowed_isds.begin(),
                               request.allowed_isds.end(),
                               static_cast<std::uint16_t>(isd)),
                    0)
              << key << " " << s.path_id;
        }
      }
      if (request.max_latency_ms.has_value()) {
        ASSERT_TRUE(s.latency_ms.has_value()) << key;
        EXPECT_LE(s.latency_ms->median, *request.max_latency_ms) << key;
      }
      if (request.min_bandwidth_mbps.has_value()) {
        const std::optional<double> bw = request_bandwidth(s, request);
        ASSERT_TRUE(bw.has_value()) << key;
        EXPECT_GE(*bw, *request.min_bandwidth_mbps) << key;
      }
      if (request.max_loss_pct.has_value()) {
        EXPECT_LE(s.mean_loss_pct, *request.max_loss_pct) << key;
      }
      if (request.max_jitter_ms.has_value()) {
        ASSERT_TRUE(s.mean_jitter_ms.has_value()) << key;
        EXPECT_LE(*s.mean_jitter_ms, *request.max_jitter_ms) << key;
      }
    }
  }
  // The generator must actually admit paths, or the invariant is vacuous.
  EXPECT_GT(checked, 500);
}

}  // namespace
}  // namespace upin::select
