// Tests for scion/beacon: segment computation and path combination.
#include "scion/beacon.hpp"

#include <gtest/gtest.h>

#include "scion/scionlab.hpp"

namespace upin::scion {
namespace {

AsInfo make_as(IsdAsn ia, AsRole role) {
  AsInfo info;
  info.ia = ia;
  info.name = ia.to_string();
  info.role = role;
  info.location = {50.0, 8.0};
  return info;
}

// Two ISDs:
//   ISD 1: core C1a, C1b; AP below both; leaf L1 below AP.
//   ISD 2: core C2; leaf L2 below C2.
// Core mesh: C1a-C1b, C1a-C2, C1b-C2.
struct TwoIsdTopo {
  const IsdAsn c1a{1, 10}, c1b{1, 11}, ap{1, 20}, l1{1, 30};
  const IsdAsn c2{2, 10}, l2{2, 30};
  Topology topo;

  TwoIsdTopo() {
    for (const auto& [ia, role] :
         std::vector<std::pair<IsdAsn, AsRole>>{
             {c1a, AsRole::kCore},
             {c1b, AsRole::kCore},
             {ap, AsRole::kAttachmentPoint},
             {l1, AsRole::kUser},
             {c2, AsRole::kCore},
             {l2, AsRole::kNonCore}}) {
      EXPECT_TRUE(topo.add_as(make_as(ia, role)).ok());
    }
    const auto parent = [&](IsdAsn a, IsdAsn b) {
      EXPECT_TRUE(topo.add_link({.a = a, .b = b,
                                 .type = LinkType::kParentChild}).ok());
    };
    const auto core = [&](IsdAsn a, IsdAsn b) {
      EXPECT_TRUE(topo.add_link({.a = a, .b = b, .type = LinkType::kCore}).ok());
    };
    parent(c1a, ap);
    parent(c1b, ap);
    parent(ap, l1);
    parent(c2, l2);
    core(c1a, c1b);
    core(c1a, c2);
    core(c1b, c2);
  }
};

TEST(Beaconing, CoreAsHasTrivialUpSegment) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  const auto& segments = beacons.up_segments(fix.c1a);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].ases, std::vector<IsdAsn>{fix.c1a});
}

TEST(Beaconing, LeafFindsAllUpSegments) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  const auto& segments = beacons.up_segments(fix.l1);
  // l1 -> ap -> c1a and l1 -> ap -> c1b.
  ASSERT_EQ(segments.size(), 2u);
  for (const Segment& segment : segments) {
    EXPECT_EQ(segment.ases.front(), fix.l1);
    EXPECT_EQ(segment.ases[1], fix.ap);
    EXPECT_EQ(fix.topo.find_as(segment.ases.back())->role, AsRole::kCore);
  }
}

TEST(Beaconing, UnknownLeafHasNoSegments) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  EXPECT_TRUE(beacons.up_segments(IsdAsn(9, 9)).empty());
}

TEST(Beaconing, CoreSegmentsBetweenCores) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  const auto segments = beacons.core_segments(fix.c1a, fix.c2);
  // Direct and via c1b.
  ASSERT_EQ(segments.size(), 2u);
  for (const Segment& segment : segments) {
    EXPECT_EQ(segment.ases.front(), fix.c1a);
    EXPECT_EQ(segment.ases.back(), fix.c2);
  }
}

TEST(Beaconing, DownSegmentsAreReversedUpSegments) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  const auto downs = beacons.down_segments(fix.c1b, fix.l1);
  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0].ases.front(), fix.c1b);
  EXPECT_EQ(downs[0].ases.back(), fix.l1);
}

TEST(Beaconing, PathsCrossIsd) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  const auto paths = beacons.paths(fix.l1, fix.l2);
  ASSERT_FALSE(paths.empty());
  for (const Path& path : paths) {
    EXPECT_EQ(path.source(), fix.l1);
    EXPECT_EQ(path.destination(), fix.l2);
  }
  // Shortest: l1, ap, c1x, c2, l2 = 5 ASes.
  EXPECT_EQ(paths.front().hop_count(), 5u);
}

TEST(Beaconing, PathsAreLoopFree) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  for (const Path& path : beacons.paths(fix.l1, fix.l2)) {
    std::set<IsdAsn> seen;
    for (const PathHop& hop : path.hops()) {
      EXPECT_TRUE(seen.insert(hop.ia).second)
          << "loop in " << path.to_string();
    }
  }
}

TEST(Beaconing, PathsAreUniqueAndSorted) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  const auto paths = beacons.paths(fix.l1, fix.l2);
  std::set<std::string> sequences;
  std::size_t previous_hops = 0;
  for (const Path& path : paths) {
    EXPECT_TRUE(sequences.insert(path.sequence()).second);
    EXPECT_GE(path.hop_count(), previous_hops);
    previous_hops = path.hop_count();
  }
}

TEST(Beaconing, SameIsdUsesSharedCoreOrShortcut) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  // ap -> l1: the combination of up(ap) and down(l1) must shortcut at ap
  // itself, yielding the 2-hop path.
  const auto paths = beacons.paths(fix.ap, fix.l1);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().hop_count(), 2u);
}

TEST(Beaconing, NoPathBetweenUnknownAses) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  EXPECT_TRUE(beacons.paths(IsdAsn(9, 9), fix.l1).empty());
  EXPECT_TRUE(beacons.paths(fix.l1, fix.l1).empty());
}

TEST(Beaconing, PathInterfacesMatchTopologyLinks) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  const auto paths = beacons.paths(fix.l1, fix.l2);
  ASSERT_FALSE(paths.empty());
  const Path& path = paths.front();
  // Endpoints have no outer interface.
  EXPECT_EQ(path.hops().front().ingress_if, 0);
  EXPECT_EQ(path.hops().back().egress_if, 0);
  // Interior interfaces are set.
  for (std::size_t i = 0; i + 1 < path.hops().size(); ++i) {
    EXPECT_NE(path.hops()[i].egress_if, 0);
    EXPECT_NE(path.hops()[i + 1].ingress_if, 0);
  }
}

TEST(Beaconing, PathMtuIsMinimumOfLinks) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  // All defaults are 1472 in this fixture.
  for (const Path& path : beacons.paths(fix.l1, fix.l2)) {
    EXPECT_DOUBLE_EQ(path.mtu(), 1472.0);
  }
}

TEST(Beaconing, UpSegmentDepthCapPrunesLongClimbs) {
  TwoIsdTopo fix;
  // A chain below l1: l1 -> g1 -> g2; with max_up_segment_ases = 3, g2's
  // up segment (g2, g1, l1, ap, core = 5 ASes) cannot complete.
  const IsdAsn g1{1, 40}, g2{1, 41};
  ASSERT_TRUE(fix.topo.add_as(make_as(g1, AsRole::kNonCore)).ok());
  ASSERT_TRUE(fix.topo.add_as(make_as(g2, AsRole::kNonCore)).ok());
  ASSERT_TRUE(fix.topo.add_link({.a = fix.l1, .b = g1,
                                 .type = LinkType::kParentChild}).ok());
  ASSERT_TRUE(fix.topo.add_link({.a = g1, .b = g2,
                                 .type = LinkType::kParentChild}).ok());
  BeaconConfig tight;
  tight.max_up_segment_ases = 3;
  const Beaconing beacons(fix.topo, tight);
  EXPECT_TRUE(beacons.up_segments(g2).empty());
  EXPECT_TRUE(beacons.up_segments(g1).empty());  // 4 ASes > cap too
  // l1's segment (l1, ap, core) fits exactly within the cap.
  EXPECT_FALSE(beacons.up_segments(fix.l1).empty());
}

TEST(Beaconing, CoreSegmentsBetweenUnknownCoresEmpty) {
  TwoIsdTopo fix;
  const Beaconing beacons(fix.topo);
  EXPECT_TRUE(beacons.core_segments(IsdAsn(9, 9), fix.c2).empty());
  EXPECT_TRUE(beacons.core_segments(fix.l1, fix.c2).empty())
      << "a non-core AS has no core segments";
}

TEST(Beaconing, MaxPathsCapRespected) {
  TwoIsdTopo fix;
  BeaconConfig config;
  config.max_paths = 1;
  const Beaconing beacons(fix.topo, config);
  EXPECT_EQ(beacons.paths(fix.l1, fix.l2).size(), 1u);
}

TEST(Beaconing, PeeringShortcutBridgesSegments) {
  TwoIsdTopo fix;
  // Add a second leaf in ISD 2 and peer it with l1: a 2-hop path appears
  // that no up/core/down combination could produce.
  Topology& topo = fix.topo;
  const IsdAsn l2b{2, 31};
  ASSERT_TRUE(topo.add_as(make_as(l2b, AsRole::kNonCore)).ok());
  ASSERT_TRUE(topo.add_link({.a = fix.c2, .b = l2b,
                             .type = LinkType::kParentChild}).ok());
  ASSERT_TRUE(topo.add_link({.a = fix.l1, .b = l2b,
                             .type = LinkType::kPeer}).ok());

  const Beaconing beacons(topo);
  const auto paths = beacons.paths(fix.l1, l2b);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().hop_count(), 2u) << "direct peering shortcut";
  // The long way through the cores also remains available.
  EXPECT_GT(paths.size(), 1u);
}

TEST(Beaconing, PeeringShortcutMidSegment) {
  TwoIsdTopo fix;
  // Peer the AP (mid up-segment of l1) with l2: path l1, ap, l2.
  ASSERT_TRUE(fix.topo.add_link({.a = fix.ap, .b = fix.l2,
                                 .type = LinkType::kPeer}).ok());
  const Beaconing beacons(fix.topo);
  const auto paths = beacons.paths(fix.l1, fix.l2);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().hop_count(), 3u);
  EXPECT_EQ(paths.front().hops()[1].ia, fix.ap);
}

TEST(Beaconing, ScionlabPeeringDoesNotChangeUserReachability) {
  // The testbed's peer links sit off MY_AS's up segments: min hop counts
  // from the user AS stay exactly as Fig 4 reports them.
  const ScionlabEnv env = scionlab_topology();
  const Beaconing beacons(env.topology);
  double hop_sum = 0.0;
  for (const SnetAddress& server : env.servers) {
    const auto paths = beacons.paths(env.user_as, server.ia);
    ASSERT_FALSE(paths.empty());
    hop_sum += static_cast<double>(paths.front().hop_count());
  }
  EXPECT_NEAR(hop_sum / 21.0, 5.71, 0.05);
}

TEST(Beaconing, ScionlabPeerShortcutBetweenLeaves) {
  // Darmstadt <-> Passau peer: the leaf-to-leaf path is 2 hops.
  const ScionlabEnv env = scionlab_topology();
  const Beaconing beacons(env.topology);
  const IsdAsn darmstadt{19, make_asn(0, 0x1304)};
  const IsdAsn passau{19, make_asn(0, 0x1305)};
  const auto paths = beacons.paths(darmstadt, passau);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().hop_count(), 2u);
}

TEST(Beaconing, ScionlabIrelandHasThreeCoreParents) {
  // The Fig 5 structure depends on Ireland's down-segments from three
  // geographically scattered cores.
  const ScionlabEnv env = scionlab_topology();
  const Beaconing beacons(env.topology);
  std::set<IsdAsn> second_last_hops;
  for (const Path& path : beacons.paths(env.user_as, scionlab::kIreland)) {
    second_last_hops.insert(path.hops()[path.hop_count() - 2].ia);
  }
  EXPECT_TRUE(second_last_hops.contains(scionlab::kFrankfurtCore));
  EXPECT_TRUE(second_last_hops.contains(scionlab::kOhio));
  EXPECT_TRUE(second_last_hops.contains(scionlab::kSingapore));
}

TEST(Beaconing, ScionlabStaticLatencyOrdersLayers) {
  const ScionlabEnv env = scionlab_topology();
  const Beaconing beacons(env.topology);
  double via_frankfurt = 0, via_singapore = 0;
  for (const Path& path : beacons.paths(env.user_as, scionlab::kIreland)) {
    const IsdAsn second_last = path.hops()[path.hop_count() - 2].ia;
    const double ms = util::to_millis(path.static_latency());
    if (second_last == scionlab::kFrankfurtCore && via_frankfurt == 0) {
      via_frankfurt = ms;
    }
    if (second_last == scionlab::kSingapore && via_singapore == 0) {
      via_singapore = ms;
    }
  }
  ASSERT_GT(via_frankfurt, 0);
  ASSERT_GT(via_singapore, 0);
  EXPECT_GT(via_singapore, 5.0 * via_frankfurt)
      << "Singapore detour must dominate the static latency";
}

}  // namespace
}  // namespace upin::scion
