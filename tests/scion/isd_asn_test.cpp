// Tests for scion/isd_asn addressing.
#include "scion/isd_asn.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace upin::scion {
namespace {

TEST(IsdAsn, FormatsHexAsn) {
  const IsdAsn ia(16, make_asn(0, 0x1002));
  EXPECT_EQ(ia.to_string(), "16-ffaa:0:1002");
}

TEST(IsdAsn, FormatsUserAsnGroup) {
  const IsdAsn ia(17, make_asn(1, 0xf00));
  EXPECT_EQ(ia.to_string(), "17-ffaa:1:f00");
}

TEST(IsdAsn, FormatsDecimalAsnBelow32Bits) {
  const IsdAsn ia(19, 64512);
  EXPECT_EQ(ia.to_string(), "19-64512");
}

TEST(IsdAsn, ParsesHexForm) {
  const auto parsed = IsdAsn::parse("16-ffaa:0:1002");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().isd(), 16);
  EXPECT_EQ(parsed.value().asn(), make_asn(0, 0x1002));
}

TEST(IsdAsn, ParsesDecimalForm) {
  const auto parsed = IsdAsn::parse("19-64512");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().asn(), 64512u);
}

TEST(IsdAsn, RoundTripsThroughText) {
  for (const char* text :
       {"16-ffaa:0:1002", "17-ffaa:1:f00", "20-ffaa:0:1401", "1-42"}) {
    const auto parsed = IsdAsn::parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().to_string(), text);
  }
}

TEST(IsdAsn, RejectsMalformedInput) {
  for (const char* bad :
       {"", "16", "16ffaa:0:1002", "-ffaa:0:1002", "x-ffaa:0:1002",
        "16-ffaa:0", "16-ffaa:0:1002:9", "16-ffaa:zz:1002", "16-ffaa:0:12345",
        "99999-1", "16-"}) {
    EXPECT_FALSE(IsdAsn::parse(bad).ok()) << bad;
  }
}

TEST(IsdAsn, OrderingAndEquality) {
  const IsdAsn a(16, 5), b(16, 6), c(17, 1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, IsdAsn(16, 5));
  EXPECT_NE(a, b);
}

TEST(IsdAsn, WildcardDetection) {
  EXPECT_TRUE(IsdAsn().is_wildcard());
  EXPECT_FALSE(IsdAsn(16, 1).is_wildcard());
}

TEST(IsdAsn, HashableInUnorderedContainers) {
  std::unordered_set<IsdAsn> set;
  set.insert(IsdAsn(16, make_asn(0, 0x1002)));
  set.insert(IsdAsn(16, make_asn(0, 0x1002)));
  set.insert(IsdAsn(17, make_asn(0, 0x1002)));
  EXPECT_EQ(set.size(), 2u);
}

TEST(MakeAsn, LayoutMatchesScionlabConvention) {
  EXPECT_EQ(make_asn(0, 0x1001), 0xffaa00001001ULL);
  EXPECT_EQ(make_asn(1, 0xf00), 0xffaa00010f00ULL);
}

TEST(SnetAddress, FormatsWithBrackets) {
  const SnetAddress addr{IsdAsn(16, make_asn(0, 0x1002)), "172.31.43.7"};
  EXPECT_EQ(addr.to_string(), "16-ffaa:0:1002,[172.31.43.7]");
}

TEST(SnetAddress, ParsesPaperAddresses) {
  const auto parsed = SnetAddress::parse("16-ffaa:0:1002,[172.31.43.7]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ia.to_string(), "16-ffaa:0:1002");
  EXPECT_EQ(parsed.value().host, "172.31.43.7");
}

TEST(SnetAddress, ParsesWithSpaces) {
  const auto parsed = SnetAddress::parse(" 19-ffaa:0:1303 , [141.44.25.144] ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().host, "141.44.25.144");
}

TEST(SnetAddress, RejectsMalformed) {
  for (const char* bad :
       {"", "16-ffaa:0:1002", "16-ffaa:0:1002,172.31.43.7",
        "16-ffaa:0:1002,[]", "bogus,[1.2.3.4]"}) {
    EXPECT_FALSE(SnetAddress::parse(bad).ok()) << bad;
  }
}

TEST(SnetAddress, RoundTrip) {
  const char* text = "20-ffaa:0:1403,[163.152.6.10]";
  EXPECT_EQ(SnetAddress::parse(text).value().to_string(), text);
}

}  // namespace
}  // namespace upin::scion
