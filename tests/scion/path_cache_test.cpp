// Tests for scion/path_cache: TTL, stale-while-revalidate, negative
// entries, LRU bounds, revocation-driven invalidation, and the
// snapshot/restore round-trip behind crash-safe campaign resume.
#include "scion/path_cache.hpp"

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace upin::scion {
namespace {

using util::SimTime;

Path make_path(std::uint64_t src, std::uint64_t mid, std::uint64_t dst) {
  std::vector<PathHop> hops{{IsdAsn{1, src}, 0, 1},
                            {IsdAsn{1, mid}, 1, 2},
                            {IsdAsn{1, dst}, 2, 0}};
  Path path(std::move(hops), 1400.0, util::sim_seconds(0.012));
  path.set_lifetime(SimTime::zero(), util::sim_seconds(21600.0));
  return path;
}

/// A counting resolver: answers with one fixed 3-hop path per pair.
struct CountingResolver {
  std::size_t calls = 0;
  std::vector<Path> answer = {make_path(1, 2, 3)};

  PathCache::Resolver fn() {
    return [this](IsdAsn, IsdAsn) {
      ++calls;
      return answer;
    };
  }
};

const IsdAsn kSrc{1, 1};
const IsdAsn kDst{1, 3};

TEST(PathCache, MissResolvesThenFreshLookupsHitWithoutResolving) {
  PathCache cache(PathCacheConfig{.ttl_s = 300.0});
  CountingResolver resolver;
  const PathCacheLookup first =
      cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.refreshed);
  ASSERT_EQ(first.paths.size(), 1u);
  EXPECT_EQ(resolver.calls, 1u);

  const PathCacheLookup second =
      cache.lookup(kSrc, kDst, util::sim_seconds(299.0), resolver.fn());
  EXPECT_TRUE(second.hit);
  EXPECT_FALSE(second.stale);
  EXPECT_FALSE(second.refreshed);
  EXPECT_EQ(second.paths, first.paths);
  EXPECT_EQ(resolver.calls, 1u) << "fresh hits must not touch the resolver";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PathCache, StaleWhileRevalidateServesOldPathsAndRefreshes) {
  PathCache cache(PathCacheConfig{.ttl_s = 300.0, .stale_serve_s = 60.0});
  CountingResolver resolver;
  (void)cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());

  // Past TTL but inside the grace window: old answer, flagged stale,
  // plus a synchronous revalidation for the next caller.
  const PathCacheLookup stale =
      cache.lookup(kSrc, kDst, util::sim_seconds(301.0), resolver.fn());
  EXPECT_TRUE(stale.hit);
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.refreshed);
  ASSERT_EQ(stale.paths.size(), 1u);
  EXPECT_EQ(stale.paths[0].status(), "stale");
  EXPECT_EQ(resolver.calls, 2u);
  EXPECT_EQ(cache.stats().stale_served, 1u);

  // The revalidation reset the entry's clock: the next lookup is fresh.
  const PathCacheLookup after =
      cache.lookup(kSrc, kDst, util::sim_seconds(302.0), resolver.fn());
  EXPECT_TRUE(after.hit);
  EXPECT_FALSE(after.stale);
  EXPECT_EQ(after.paths[0].status(), "alive");
  EXPECT_EQ(resolver.calls, 2u);
}

TEST(PathCache, BeyondGraceWindowIsAPlainMissRefresh) {
  PathCache cache(PathCacheConfig{.ttl_s = 300.0, .stale_serve_s = 60.0});
  CountingResolver resolver;
  (void)cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());
  const PathCacheLookup lookup =
      cache.lookup(kSrc, kDst, util::sim_seconds(361.0), resolver.fn());
  EXPECT_FALSE(lookup.hit);
  EXPECT_FALSE(lookup.stale);
  EXPECT_TRUE(lookup.refreshed);
  EXPECT_EQ(resolver.calls, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PathCache, EmptyAnswersAreCachedWithTheirOwnTtl) {
  PathCache cache(PathCacheConfig{.negative_ttl_s = 30.0});
  CountingResolver resolver;
  resolver.answer.clear();
  const PathCacheLookup first =
      cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());
  EXPECT_TRUE(first.negative);
  EXPECT_TRUE(first.refreshed);
  EXPECT_TRUE(first.paths.empty());

  // Within the negative TTL the empty answer is served from the cache.
  const PathCacheLookup second =
      cache.lookup(kSrc, kDst, util::sim_seconds(29.0), resolver.fn());
  EXPECT_TRUE(second.hit);
  EXPECT_TRUE(second.negative);
  EXPECT_EQ(resolver.calls, 1u);
  EXPECT_EQ(cache.stats().negative_hits, 1u);

  // Past it, the pair is re-resolved — and paths may have appeared.
  resolver.answer = {make_path(1, 2, 3)};
  const PathCacheLookup third =
      cache.lookup(kSrc, kDst, util::sim_seconds(31.0), resolver.fn());
  EXPECT_TRUE(third.refreshed);
  EXPECT_FALSE(third.negative);
  ASSERT_EQ(third.paths.size(), 1u);
  EXPECT_EQ(resolver.calls, 2u);
}

TEST(PathCache, LruEvictionKeepsTheMostRecentlyUsedPairs) {
  PathCache cache(PathCacheConfig{.capacity = 2});
  CountingResolver resolver;
  const IsdAsn a{1, 10}, b{1, 11}, c{1, 12};
  (void)cache.lookup(kSrc, a, SimTime::zero(), resolver.fn());
  (void)cache.lookup(kSrc, b, util::sim_seconds(1.0), resolver.fn());
  // Touch (src, a) so (src, b) is the LRU victim.
  (void)cache.lookup(kSrc, a, util::sim_seconds(2.0), resolver.fn());
  (void)cache.lookup(kSrc, c, util::sim_seconds(3.0), resolver.fn());

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const std::size_t calls_before = resolver.calls;
  EXPECT_TRUE(
      cache.lookup(kSrc, a, util::sim_seconds(4.0), resolver.fn()).hit);
  EXPECT_EQ(resolver.calls, calls_before) << "(src, a) must have survived";
  EXPECT_FALSE(
      cache.lookup(kSrc, b, util::sim_seconds(5.0), resolver.fn()).hit)
      << "(src, b) was the least recently used pair and must be gone";
}

TEST(PathCache, InvalidationDirtyMarksAndForcesReResolve) {
  PathCache cache(PathCacheConfig{});
  CountingResolver resolver;
  (void)cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());

  const std::size_t marked = cache.invalidate_if(
      [](const Path& path) { return path.traverses(IsdAsn{1, 2}); });
  EXPECT_EQ(marked, 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);

  // Well within TTL, but dirty: the entry re-resolves before serving.
  const PathCacheLookup lookup =
      cache.lookup(kSrc, kDst, util::sim_seconds(1.0), resolver.fn());
  EXPECT_TRUE(lookup.refreshed);
  EXPECT_FALSE(lookup.stale);
  EXPECT_EQ(resolver.calls, 2u);
}

TEST(PathCache, DirtyEntryServedStaleWhenResolverUnavailable) {
  PathCache cache(PathCacheConfig{});
  CountingResolver resolver;
  (void)cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());
  (void)cache.invalidate_if([](const Path&) { return true; });

  const PathCacheLookup lookup = cache.lookup(
      kSrc, kDst, util::sim_seconds(1.0), resolver.fn(), /*available=*/false);
  EXPECT_TRUE(lookup.hit);
  EXPECT_TRUE(lookup.stale);
  EXPECT_FALSE(lookup.refreshed);
  ASSERT_EQ(lookup.paths.size(), 1u);
  EXPECT_EQ(lookup.paths[0].status(), "stale");
  EXPECT_EQ(resolver.calls, 1u);
}

TEST(PathCache, ResolverDownServesStaleAtAnyAgeButHardMissesCold) {
  PathCache cache(PathCacheConfig{.ttl_s = 300.0, .stale_serve_s = 60.0});
  CountingResolver resolver;
  (void)cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());

  // Far beyond TTL + grace: with the resolver down, stale beats a miss.
  const PathCacheLookup stale =
      cache.lookup(kSrc, kDst, util::sim_seconds(9000.0), resolver.fn(),
                   /*available=*/false);
  EXPECT_TRUE(stale.hit);
  EXPECT_TRUE(stale.stale);
  EXPECT_FALSE(stale.refreshed);
  EXPECT_EQ(resolver.calls, 1u);

  // A pair never seen before cannot degrade: hard miss, no resolve.
  const PathCacheLookup cold =
      cache.lookup(kSrc, IsdAsn{1, 99}, util::sim_seconds(9000.0),
                   resolver.fn(), /*available=*/false);
  EXPECT_FALSE(cold.hit);
  EXPECT_TRUE(cold.negative);
  EXPECT_TRUE(cold.paths.empty());
  EXPECT_EQ(resolver.calls, 1u);
}

TEST(PathCache, DisabledCacheBypassesToTheResolver) {
  PathCache cache(PathCacheConfig{.enabled = false});
  CountingResolver resolver;
  const PathCacheLookup lookup =
      cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());
  EXPECT_FALSE(lookup.hit);
  EXPECT_TRUE(lookup.refreshed);
  EXPECT_EQ(lookup.paths.size(), 1u);
  (void)cache.lookup(kSrc, kDst, SimTime::zero(), resolver.fn());
  EXPECT_EQ(resolver.calls, 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PathCache, SnapshotRestoreRoundTripsObservableState) {
  PathCache cache(PathCacheConfig{.negative_ttl_s = 30.0});
  CountingResolver resolver;
  (void)cache.lookup(kSrc, kDst, util::sim_seconds(5.0), resolver.fn());
  CountingResolver empty;
  empty.answer.clear();
  (void)cache.lookup(kSrc, IsdAsn{1, 7}, util::sim_seconds(6.0), empty.fn());
  (void)cache.invalidate_if(
      [](const Path& path) { return path.traverses(IsdAsn{1, 2}); });

  const util::Value snapshot = cache.snapshot();
  PathCache restored(cache.config());
  ASSERT_TRUE(restored.restore(snapshot).ok());
  EXPECT_EQ(restored.size(), cache.size());
  // The full observable state (entries, LRU order, timestamps, flags)
  // must survive the round trip bit-for-bit.
  EXPECT_EQ(restored.snapshot().dump(), snapshot.dump());

  // Behavioural equivalence: the restored dirty entry still re-resolves,
  // the restored negative entry still answers empty from the cache.
  CountingResolver after;
  EXPECT_TRUE(
      restored.lookup(kSrc, kDst, util::sim_seconds(7.0), after.fn()).refreshed);
  EXPECT_EQ(after.calls, 1u);
  const PathCacheLookup negative =
      restored.lookup(kSrc, IsdAsn{1, 7}, util::sim_seconds(8.0), after.fn());
  EXPECT_TRUE(negative.negative);
  EXPECT_TRUE(negative.hit);
  EXPECT_EQ(after.calls, 1u);
}

TEST(PathCache, RestoreRejectsMalformedSnapshots) {
  PathCache cache;
  EXPECT_FALSE(cache.restore(util::Value()).ok());
  EXPECT_FALSE(cache.restore(util::Value::object({})).ok());
}

}  // namespace
}  // namespace upin::scion
