// Tests for scion/path: hop sequences, predicates, metadata.
#include "scion/path.hpp"

#include <gtest/gtest.h>

namespace upin::scion {
namespace {

Path three_hop_path() {
  std::vector<PathHop> hops{
      {IsdAsn(17, make_asn(1, 0xf00)), 0, 1},
      {IsdAsn(17, make_asn(0, 0x1107)), 4, 1},
      {IsdAsn(16, make_asn(0, 0x1002)), 1, 0},
  };
  return Path(std::move(hops), 1452.0, util::sim_millis(23.0));
}

TEST(Path, BasicAccessors) {
  const Path path = three_hop_path();
  EXPECT_EQ(path.hop_count(), 3u);
  EXPECT_EQ(path.source().to_string(), "17-ffaa:1:f00");
  EXPECT_EQ(path.destination().to_string(), "16-ffaa:0:1002");
  EXPECT_DOUBLE_EQ(path.mtu(), 1452.0);
  EXPECT_DOUBLE_EQ(util::to_millis(path.static_latency()), 23.0);
  EXPECT_EQ(path.status(), "alive");
}

TEST(Path, StatusIsMutable) {
  Path path = three_hop_path();
  path.set_status("timeout");
  EXPECT_EQ(path.status(), "timeout");
}

TEST(Path, IsdSetIsSortedUnique) {
  const Path path = three_hop_path();
  const std::set<std::uint16_t> isds = path.isd_set();
  EXPECT_EQ(isds, (std::set<std::uint16_t>{16, 17}));
}

TEST(Path, TraversesChecksEveryHop) {
  const Path path = three_hop_path();
  EXPECT_TRUE(path.traverses(IsdAsn(17, make_asn(0, 0x1107))));
  EXPECT_FALSE(path.traverses(IsdAsn(19, make_asn(0, 0x1301))));
}

TEST(Path, SequenceFormat) {
  const Path path = three_hop_path();
  EXPECT_EQ(path.sequence(),
            "17-ffaa:1:f00#0,1 17-ffaa:0:1107#4,1 16-ffaa:0:1002#1,0");
}

TEST(Path, ToStringChainsAses) {
  EXPECT_EQ(three_hop_path().to_string(),
            "17-ffaa:1:f00 > 17-ffaa:0:1107 > 16-ffaa:0:1002");
}

TEST(Path, ParseSequenceRoundTrip) {
  const Path original = three_hop_path();
  const auto parsed = Path::parse_sequence(original.sequence());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().hops(), original.hops());
}

TEST(Path, ParseSequenceToleratesExtraSpaces) {
  const auto parsed =
      Path::parse_sequence("17-ffaa:1:f00#0,1  16-ffaa:0:1002#1,0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().hop_count(), 2u);
}

TEST(Path, ParseSequenceRejectsMalformed) {
  for (const char* bad :
       {"", "17-ffaa:1:f00#0,1",                 // single hop
        "17-ffaa:1:f00 16-ffaa:0:1002",          // missing '#'
        "17-ffaa:1:f00#0 16-ffaa:0:1002#1,0",    // missing comma
        "17-ffaa:1:f00#a,1 16-ffaa:0:1002#1,0",  // bad interface
        "bogus#0,1 16-ffaa:0:1002#1,0"}) {       // bad ISD-AS
    EXPECT_FALSE(Path::parse_sequence(bad).ok()) << bad;
  }
}

TEST(Path, EqualityIsStructural) {
  EXPECT_EQ(three_hop_path(), three_hop_path());
  Path other = three_hop_path();
  other.set_status("dead");
  EXPECT_FALSE(three_hop_path() == other);
}

TEST(PathHop, Equality) {
  const PathHop a{IsdAsn(1, 2), 3, 4};
  EXPECT_EQ(a, (PathHop{IsdAsn(1, 2), 3, 4}));
  EXPECT_FALSE(a == (PathHop{IsdAsn(1, 2), 3, 5}));
}

}  // namespace
}  // namespace upin::scion
