// Tests for scion/revocation: SCMP-style revocation events derived from
// FaultPlan windows — bounded seeded delivery delay, the
// delivery-to-heal active interval, directional coverage, and the
// delivery cursor the cache-invalidation sync loop drives.
#include "scion/revocation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "scion/scionlab.hpp"

namespace upin::scion {
namespace {

using util::SimTime;

/// Fixture: the 35-AS SCIONLab topology under an aggressive fault plan,
/// so both revocation kinds have plenty of windows to derive from.
class RevocationTest : public ::testing::Test {
 protected:
  RevocationTest() : env_(scionlab_topology()) {
    simnet::FaultPlanConfig fault_config;
    fault_config.link_flap_per_hour = 2.0;
    fault_config.server_down_per_hour = 2.0;
    faults_ = simnet::FaultPlan(99, fault_config);
    node_of_ = env_.topology.compile(99).node_of;
  }

  RevocationLog make_log(RevocationConfig config = {}) const {
    return RevocationLog(42, config, env_.topology, node_of_, faults_);
  }

  ScionlabEnv env_;
  simnet::FaultPlan faults_;
  std::unordered_map<IsdAsn, simnet::NodeId> node_of_;
};

TEST_F(RevocationTest, EmitsBothKindsWithDelayInsideConfiguredBounds) {
  const RevocationConfig config{.min_delay_s = 0.05, .max_delay_s = 0.5};
  const RevocationLog log = make_log(config);
  ASSERT_FALSE(log.events().empty());
  bool saw_link = false;
  bool saw_server = false;
  SimTime previous = SimTime::zero();
  for (const Revocation& event : log.events()) {
    saw_link |= event.kind == Revocation::Kind::kLinkDown;
    saw_server |= event.kind == Revocation::Kind::kServerDown;
    const SimTime delay = event.delivered_at - event.fault_start;
    EXPECT_GE(delay, util::sim_seconds(config.min_delay_s));
    EXPECT_LE(delay, util::sim_seconds(config.max_delay_s));
    EXPECT_GE(event.delivered_at, previous) << "events sorted by delivery";
    previous = event.delivered_at;
  }
  EXPECT_TRUE(saw_link);
  EXPECT_TRUE(saw_server);
}

TEST_F(RevocationTest, ScheduleIsAPureFunctionOfTheSeed) {
  const RevocationLog a = make_log();
  const RevocationLog b = make_log();
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].delivered_at, b.events()[i].delivered_at);
    EXPECT_EQ(a.events()[i].from, b.events()[i].from);
    EXPECT_EQ(a.events()[i].to, b.events()[i].to);
  }
}

TEST_F(RevocationTest, DisabledConfigOrInertPlanEmitsNothing) {
  EXPECT_TRUE(make_log(RevocationConfig{.enabled = false}).events().empty());
  const RevocationLog inert(42, RevocationConfig{}, env_.topology, node_of_,
                            simnet::FaultPlan{});
  EXPECT_TRUE(inert.events().empty());
  EXPECT_FALSE(
      inert.as_revoked(env_.user_as, util::sim_seconds(1.0)));
}

TEST_F(RevocationTest, ActiveExactlyFromDeliveryToFaultEnd) {
  const RevocationLog log = make_log();
  const auto link = std::find_if(
      log.events().begin(), log.events().end(), [](const Revocation& e) {
        return e.kind == Revocation::Kind::kLinkDown;
      });
  ASSERT_NE(link, log.events().end());

  const auto revoked = [&](SimTime t) {
    return log.link_revoked(link->from, link->to, t);
  };
  // Inside the fault window but before the SCMP arrived: the host does
  // not know yet — probes may still die on the wire, legitimately.
  EXPECT_FALSE(revoked(link->fault_start));
  EXPECT_FALSE(revoked(link->delivered_at - util::SimTime(1)));
  EXPECT_TRUE(revoked(link->delivered_at));
  EXPECT_TRUE(revoked(link->fault_end - util::SimTime(1)));
  // The fault healed: the revocation expires with it.
  EXPECT_FALSE(revoked(link->fault_end));
}

TEST_F(RevocationTest, PathCoverageChecksBothLinkDirectionsAndDestination) {
  const RevocationLog log = make_log();
  const auto link = std::find_if(
      log.events().begin(), log.events().end(), [](const Revocation& e) {
        return e.kind == Revocation::Kind::kLinkDown;
      });
  ASSERT_NE(link, log.events().end());
  const SimTime when = link->delivered_at;

  // A path traversing the link in the *reverse* direction is revoked
  // too: probes are round trips.
  const Path forward({{link->from, 0, 1}, {link->to, 1, 0}}, 1400.0, {});
  const Path reverse({{link->to, 0, 1}, {link->from, 1, 0}}, 1400.0, {});
  EXPECT_TRUE(log.path_revoked(forward, when));
  EXPECT_TRUE(log.path_revoked(reverse, when));
  EXPECT_TRUE(log.hops_revoked({link->from, link->to}, when));
  EXPECT_TRUE(log.hops_revoked({link->to, link->from}, when));

  const auto server = std::find_if(
      log.events().begin(), log.events().end(), [](const Revocation& e) {
        return e.kind == Revocation::Kind::kServerDown;
      });
  ASSERT_NE(server, log.events().end());
  // Server-down covers paths *ending* at the dark AS; a path merely
  // passing through it is untouched (matching the data plane, which only
  // fails operations whose destination is down).
  EXPECT_TRUE(log.as_revoked(server->from, server->delivered_at));
  const Path ending({{IsdAsn{17, 1}, 0, 1}, {server->from, 1, 0}}, 1400.0, {});
  EXPECT_TRUE(log.path_revoked(ending, server->delivered_at));
  const Path transiting(
      {{IsdAsn{17, 1}, 0, 1}, {server->from, 1, 2}, {IsdAsn{17, 2}, 2, 0}},
      1400.0, {});
  if (!log.hops_revoked({IsdAsn{17, 1}, server->from, IsdAsn{17, 2}},
                        server->delivered_at)) {
    EXPECT_FALSE(log.path_revoked(transiting, server->delivered_at));
  }
}

TEST_F(RevocationTest, RevokedSinceReportsEarliestCoveringDelivery) {
  const RevocationLog log = make_log();
  const auto link = std::find_if(
      log.events().begin(), log.events().end(), [](const Revocation& e) {
        return e.kind == Revocation::Kind::kLinkDown;
      });
  ASSERT_NE(link, log.events().end());
  const Path path({{link->from, 0, 1}, {link->to, 1, 0}}, 1400.0, {});

  const auto since = log.revoked_since(path, link->delivered_at);
  ASSERT_TRUE(since.has_value());
  EXPECT_LE(*since, link->delivered_at);
  EXPECT_FALSE(
      log.revoked_since(path, link->delivered_at - util::SimTime(1))
          .has_value())
      << "not yet delivered means not revoked";
}

TEST_F(RevocationTest, PollDeliversEachEventExactlyOnceInOrder) {
  RevocationLog log = make_log();
  ASSERT_GE(log.events().size(), 2u);
  const SimTime first_delivery = log.events().front().delivered_at;

  std::vector<SimTime> seen;
  const auto collect = [&](const Revocation& event) {
    seen.push_back(event.delivered_at);
  };
  EXPECT_EQ(log.poll(first_delivery - util::SimTime(1), collect), 0u);
  EXPECT_EQ(log.poll(first_delivery, collect), 1u);
  EXPECT_EQ(log.poll(first_delivery, collect), 0u) << "idempotent per instant";
  EXPECT_EQ(log.cursor(), 1u);

  const std::size_t rest =
      log.poll(log.events().back().delivered_at, collect);
  EXPECT_EQ(rest, log.events().size() - 1);
  EXPECT_EQ(log.cursor(), log.events().size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST_F(RevocationTest, AdvanceCursorSkipsDeliveriesSilently) {
  RevocationLog log = make_log();
  ASSERT_GE(log.events().size(), 3u);
  const SimTime midpoint = log.events()[1].delivered_at;
  log.advance_cursor_to(midpoint);
  EXPECT_GE(log.cursor(), 2u);

  // A poll at the same instant finds nothing left to fire — the skipped
  // events are never re-delivered to the cache-invalidation callback.
  std::size_t fired = 0;
  EXPECT_EQ(log.poll(midpoint, [&](const Revocation&) { ++fired; }), 0u);
  EXPECT_EQ(fired, 0u);
}

}  // namespace
}  // namespace upin::scion
