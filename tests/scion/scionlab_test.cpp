// Tests for scion/scionlab: the embedded testbed's structural contract
// with the paper (§3.1, §6).
#include "scion/scionlab.hpp"

#include <gtest/gtest.h>

#include <set>

namespace upin::scion {
namespace {

class ScionlabTest : public ::testing::Test {
 protected:
  const ScionlabEnv env = scionlab_topology();
};

TEST_F(ScionlabTest, ThirtyFiveInfrastructureAsesPlusUser) {
  EXPECT_EQ(env.topology.ases().size(), 36u);  // 35 + MY_AS (paper §3.1)
  std::size_t infra = 0;
  for (const AsInfo& info : env.topology.ases()) {
    if (info.role != AsRole::kUser) ++infra;
  }
  EXPECT_EQ(infra, 35u);
}

TEST_F(ScionlabTest, TopologyValidates) {
  EXPECT_TRUE(env.topology.validate().ok());
}

TEST_F(ScionlabTest, EveryIsdHasACore) {
  for (const std::uint16_t isd : env.topology.isds()) {
    EXPECT_FALSE(env.topology.core_ases(isd).empty()) << "ISD " << isd;
  }
}

TEST_F(ScionlabTest, TwentyOneAvailableServers) {
  EXPECT_EQ(env.servers.size(), 21u);  // paper §6: 21 reachable destinations
  std::set<std::string> addresses;
  for (const SnetAddress& server : env.servers) {
    EXPECT_NE(env.topology.find_as(server.ia), nullptr);
    EXPECT_TRUE(addresses.insert(server.to_string()).second);
  }
}

TEST_F(ScionlabTest, FeaturedServersMatchPaperSection6) {
  // Germany, N. Virginia, Ireland, Singapore, Korea — ids 1..5.
  EXPECT_EQ(env.servers[0].ia, scionlab::kGermanyAp);
  EXPECT_EQ(env.servers[1].ia, scionlab::kNVirginia);
  EXPECT_EQ(env.servers[2].ia, scionlab::kIreland);
  EXPECT_EQ(env.servers[3].ia, scionlab::kSingapore);
  EXPECT_EQ(env.servers[4].ia, scionlab::kKorea);
  // The exact addresses quoted in the paper's figures.
  EXPECT_EQ(env.servers[2].to_string(), "16-ffaa:0:1002,[172.31.43.7]");
  EXPECT_EQ(env.servers[1].to_string(), "16-ffaa:0:1003,[172.31.19.144]");
  EXPECT_EQ(env.servers[0].to_string(), "19-ffaa:0:1303,[141.44.25.144]");
}

TEST_F(ScionlabTest, FeaturedCountriesMatchPaper) {
  const auto country = [&](IsdAsn ia) {
    return env.topology.find_as(ia)->country;
  };
  EXPECT_EQ(country(scionlab::kGermanyAp), "DE");
  EXPECT_EQ(country(scionlab::kIreland), "IE");
  EXPECT_EQ(country(scionlab::kNVirginia), "US");
  EXPECT_EQ(country(scionlab::kSingapore), "SG");
  EXPECT_EQ(country(scionlab::kKorea), "KR");
}

TEST_F(ScionlabTest, UserAsIsAttachedToEthzAp) {
  EXPECT_EQ(env.user_as, scionlab::kUserAs);
  const AsInfo* user = env.topology.find_as(env.user_as);
  ASSERT_NE(user, nullptr);
  EXPECT_EQ(user->role, AsRole::kUser);
  EXPECT_EQ(env.topology.parents_of(env.user_as),
            std::vector<IsdAsn>{scionlab::kEthzAp});
}

TEST_F(ScionlabTest, UserAccessLinkIsAsymmetricBottleneck) {
  const AsLink* access =
      env.topology.find_link(scionlab::kEthzAp, scionlab::kUserAs);
  ASSERT_NE(access, nullptr);
  EXPECT_LT(access->capacity_ba_mbps, access->capacity_ab_mbps)
      << "upstream below downstream (paper §6.2 asymmetry)";
  // And it is the narrowest link anywhere (the shared bwtest bottleneck).
  for (const AsLink& link : env.topology.links()) {
    if (&link == access) continue;
    EXPECT_GT(link.capacity_ab_mbps, access->capacity_ba_mbps);
    EXPECT_GT(link.capacity_ba_mbps, access->capacity_ba_mbps);
  }
}

TEST_F(ScionlabTest, IrelandHasThreeParents) {
  const std::vector<IsdAsn> parents =
      env.topology.parents_of(scionlab::kIreland);
  const std::set<IsdAsn> parent_set(parents.begin(), parents.end());
  EXPECT_EQ(parent_set, (std::set<IsdAsn>{scionlab::kFrankfurtCore,
                                          scionlab::kOhio,
                                          scionlab::kSingapore}));
}

TEST_F(ScionlabTest, JitteryAsesAreOhioAndSingapore) {
  // Paper §6.1: "ASes 16-ffaa:0:1007 and 16-ffaa:0:1004 introduce a wide
  // jitter other than high latency peeks".
  const double ohio = env.topology.find_as(scionlab::kOhio)->jitter_ms;
  const double singapore =
      env.topology.find_as(scionlab::kSingapore)->jitter_ms;
  for (const AsInfo& info : env.topology.ases()) {
    if (info.ia == scionlab::kOhio || info.ia == scionlab::kSingapore) continue;
    EXPECT_LT(info.jitter_ms, ohio);
    EXPECT_LT(info.jitter_ms, singapore);
  }
}

TEST_F(ScionlabTest, RolesAreInternallyConsistent) {
  std::size_t cores = 0, aps = 0;
  for (const AsInfo& info : env.topology.ases()) {
    if (info.role == AsRole::kCore) ++cores;
    if (info.role == AsRole::kAttachmentPoint) ++aps;
  }
  EXPECT_GE(cores, 7u);  // at least one per ISD (we have multi-core ISDs)
  EXPECT_GE(aps, 5u);    // ETHZ, Ireland, CMU, Magdeburg, KAIST
}

TEST_F(ScionlabTest, GeographyIsPlausible) {
  const AsInfo* singapore = env.topology.find_as(scionlab::kSingapore);
  const AsInfo* frankfurt = env.topology.find_as(scionlab::kFrankfurtCore);
  ASSERT_NE(singapore, nullptr);
  ASSERT_NE(frankfurt, nullptr);
  EXPECT_GT(simnet::haversine_km(singapore->location, frankfurt->location),
            9000.0);
}

TEST_F(ScionlabTest, DeterministicConstruction) {
  const ScionlabEnv again = scionlab_topology();
  EXPECT_EQ(again.topology.ases().size(), env.topology.ases().size());
  EXPECT_EQ(again.topology.links().size(), env.topology.links().size());
  EXPECT_EQ(again.servers.size(), env.servers.size());
}

}  // namespace
}  // namespace upin::scion
