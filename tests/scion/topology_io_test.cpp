// Tests for scion/topology_io: serialization round trips and validation.
#include "scion/topology_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "scion/beacon.hpp"
#include "scion/scionlab.hpp"

namespace upin::scion {
namespace {

using util::Value;

TEST(TopologyIo, RoundTripPreservesStructure) {
  const ScionlabEnv env = scionlab_topology();
  const Value document = topology_to_json(env.topology);
  const auto reloaded = topology_from_json(document);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().ases().size(), env.topology.ases().size());
  EXPECT_EQ(reloaded.value().links().size(), env.topology.links().size());
  EXPECT_TRUE(reloaded.value().validate().ok());
}

TEST(TopologyIo, RoundTripPreservesMetadata) {
  const ScionlabEnv env = scionlab_topology();
  const auto reloaded = topology_from_json(topology_to_json(env.topology));
  ASSERT_TRUE(reloaded.ok());
  const AsInfo* original = env.topology.find_as(scionlab::kSingapore);
  const AsInfo* copy = reloaded.value().find_as(scionlab::kSingapore);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->name, original->name);
  EXPECT_EQ(copy->role, original->role);
  EXPECT_EQ(copy->country, original->country);
  EXPECT_EQ(copy->operator_name, original->operator_name);
  EXPECT_DOUBLE_EQ(copy->location.lat_deg, original->location.lat_deg);
  EXPECT_DOUBLE_EQ(copy->jitter_ms, original->jitter_ms);
}

TEST(TopologyIo, RoundTripPreservesLinkParameters) {
  const ScionlabEnv env = scionlab_topology();
  const auto reloaded = topology_from_json(topology_to_json(env.topology));
  ASSERT_TRUE(reloaded.ok());
  const AsLink* original =
      env.topology.find_link(scionlab::kEthzAp, scionlab::kUserAs);
  const AsLink* copy =
      reloaded.value().find_link(scionlab::kEthzAp, scionlab::kUserAs);
  ASSERT_NE(copy, nullptr);
  EXPECT_DOUBLE_EQ(copy->capacity_ab_mbps, original->capacity_ab_mbps);
  EXPECT_DOUBLE_EQ(copy->capacity_ba_mbps, original->capacity_ba_mbps);
  EXPECT_DOUBLE_EQ(copy->mtu, original->mtu);
  EXPECT_EQ(copy->type, original->type);
}

TEST(TopologyIo, ReloadedTopologyProducesSamePaths) {
  const ScionlabEnv env = scionlab_topology();
  const auto reloaded = topology_from_json(topology_to_json(env.topology));
  ASSERT_TRUE(reloaded.ok());
  const Beaconing original_beacons(env.topology);
  const Beaconing reloaded_beacons(reloaded.value());
  const auto original_paths =
      original_beacons.paths(env.user_as, scionlab::kIreland);
  const auto reloaded_paths =
      reloaded_beacons.paths(env.user_as, scionlab::kIreland);
  ASSERT_EQ(original_paths.size(), reloaded_paths.size());
  for (std::size_t i = 0; i < original_paths.size(); ++i) {
    EXPECT_EQ(original_paths[i].sequence(), reloaded_paths[i].sequence());
    EXPECT_DOUBLE_EQ(original_paths[i].mtu(), reloaded_paths[i].mtu());
  }
}

TEST(TopologyIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "upin_topo.json").string();
  const ScionlabEnv env = scionlab_topology();
  ASSERT_TRUE(save_topology(env.topology, path).ok());
  const auto loaded = load_topology(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().ases().size(), env.topology.ases().size());
  std::filesystem::remove(path);
}

TEST(TopologyIo, LoadMissingFileFails) {
  EXPECT_FALSE(load_topology("/nonexistent/topo.json").ok());
}

TEST(TopologyIo, ParseMinimalCustomTopology) {
  const auto document = Value::parse(R"({
    "ases": [
      {"ia": "1-1", "role": "core", "lat": 50, "lon": 8, "country": "DE"},
      {"ia": "1-2", "role": "non-core", "lat": 52, "lon": 4, "country": "NL"}
    ],
    "links": [
      {"a": "1-1", "b": "1-2", "type": "parent-child"}
    ]
  })");
  ASSERT_TRUE(document.ok());
  const auto topology = topology_from_json(document.value());
  ASSERT_TRUE(topology.ok());
  EXPECT_EQ(topology.value().ases().size(), 2u);
  // Defaults applied.
  EXPECT_DOUBLE_EQ(topology.value().links()[0].capacity_ab_mbps, 1000.0);
  EXPECT_DOUBLE_EQ(topology.value().links()[0].mtu, 1472.0);
}

TEST(TopologyIo, RejectsStructurallyInvalidTopologies) {
  // Missing arrays.
  EXPECT_FALSE(topology_from_json(Value::parse(R"({})").value()).ok());
  // Unknown role.
  EXPECT_FALSE(topology_from_json(Value::parse(R"({
    "ases": [{"ia": "1-1", "role": "boss", "lat": 0, "lon": 0}],
    "links": []
  })").value()).ok());
  // Parent-child across ISDs (add_link rule).
  EXPECT_FALSE(topology_from_json(Value::parse(R"({
    "ases": [
      {"ia": "1-1", "role": "core", "lat": 0, "lon": 0},
      {"ia": "2-1", "role": "non-core", "lat": 1, "lon": 1}
    ],
    "links": [{"a": "1-1", "b": "2-1", "type": "parent-child"}]
  })").value()).ok());
  // Orphan leaf (validate rule).
  EXPECT_FALSE(topology_from_json(Value::parse(R"({
    "ases": [
      {"ia": "1-1", "role": "core", "lat": 0, "lon": 0},
      {"ia": "1-2", "role": "non-core", "lat": 1, "lon": 1}
    ],
    "links": []
  })").value()).ok());
  // Bad ISD-AS text.
  EXPECT_FALSE(topology_from_json(Value::parse(R"({
    "ases": [{"ia": "nope", "role": "core", "lat": 0, "lon": 0}],
    "links": []
  })").value()).ok());
}

TEST(TopologyIo, ParseHelpers) {
  EXPECT_EQ(parse_role("core").value(), AsRole::kCore);
  EXPECT_EQ(parse_role("attachment-point").value(), AsRole::kAttachmentPoint);
  EXPECT_FALSE(parse_role("").ok());
  EXPECT_EQ(parse_link_type("peer").value(), LinkType::kPeer);
  EXPECT_FALSE(parse_link_type("sibling").ok());
}

}  // namespace
}  // namespace upin::scion
