// Tests for scion/topology: AS registry, link typing rules, validation,
// compilation into a simnet network.
#include "scion/topology.hpp"

#include <gtest/gtest.h>

namespace upin::scion {
namespace {

AsInfo make_as(IsdAsn ia, AsRole role, const char* country = "NL") {
  AsInfo info;
  info.ia = ia;
  info.name = ia.to_string();
  info.role = role;
  info.location = {52.0, 5.0};
  info.country = country;
  info.operator_name = "op";
  return info;
}

const IsdAsn kCore17{17, 1};
const IsdAsn kCore18{18, 1};
const IsdAsn kLeaf17{17, 2};
const IsdAsn kLeaf17b{17, 3};
const IsdAsn kLeaf18{18, 2};

struct SmallTopo {
  Topology topo;
  SmallTopo() {
    EXPECT_TRUE(topo.add_as(make_as(kCore17, AsRole::kCore)).ok());
    EXPECT_TRUE(topo.add_as(make_as(kCore18, AsRole::kCore)).ok());
    EXPECT_TRUE(topo.add_as(make_as(kLeaf17, AsRole::kNonCore)).ok());
    EXPECT_TRUE(topo.add_as(make_as(kLeaf17b, AsRole::kNonCore)).ok());
    EXPECT_TRUE(topo.add_as(make_as(kLeaf18, AsRole::kNonCore)).ok());
    EXPECT_TRUE(topo.add_link({.a = kCore17, .b = kCore18,
                               .type = LinkType::kCore}).ok());
    EXPECT_TRUE(topo.add_link({.a = kCore17, .b = kLeaf17,
                               .type = LinkType::kParentChild}).ok());
    EXPECT_TRUE(topo.add_link({.a = kCore17, .b = kLeaf17b,
                               .type = LinkType::kParentChild}).ok());
    EXPECT_TRUE(topo.add_link({.a = kCore18, .b = kLeaf18,
                               .type = LinkType::kParentChild}).ok());
  }
};

TEST(Topology, RejectsDuplicateAs) {
  Topology topo;
  ASSERT_TRUE(topo.add_as(make_as(kCore17, AsRole::kCore)).ok());
  EXPECT_EQ(topo.add_as(make_as(kCore17, AsRole::kCore)).error().code,
            util::ErrorCode::kConflict);
}

TEST(Topology, FindAs) {
  SmallTopo fix;
  ASSERT_NE(fix.topo.find_as(kCore17), nullptr);
  EXPECT_EQ(fix.topo.find_as(kCore17)->role, AsRole::kCore);
  EXPECT_EQ(fix.topo.find_as(IsdAsn(99, 99)), nullptr);
}

TEST(Topology, RejectsLinkWithUnknownEndpoint) {
  Topology topo;
  ASSERT_TRUE(topo.add_as(make_as(kCore17, AsRole::kCore)).ok());
  EXPECT_FALSE(topo.add_link({.a = kCore17, .b = IsdAsn(9, 9),
                              .type = LinkType::kCore}).ok());
}

TEST(Topology, RejectsSelfLinkAndDuplicateLink) {
  SmallTopo fix;
  EXPECT_FALSE(fix.topo.add_link({.a = kCore17, .b = kCore17,
                                  .type = LinkType::kCore}).ok());
  EXPECT_EQ(fix.topo.add_link({.a = kCore18, .b = kCore17,
                               .type = LinkType::kCore}).error().code,
            util::ErrorCode::kConflict)
      << "reverse orientation is the same physical link";
}

TEST(Topology, CoreLinkRequiresCoreEndpoints) {
  SmallTopo fix;
  EXPECT_FALSE(fix.topo.add_link({.a = kCore17, .b = kLeaf18,
                                  .type = LinkType::kCore}).ok());
}

TEST(Topology, ParentChildMustStayInIsd) {
  SmallTopo fix;
  EXPECT_FALSE(fix.topo.add_link({.a = kCore17, .b = kLeaf18,
                                  .type = LinkType::kParentChild}).ok());
}

TEST(Topology, CoreCannotBeChild) {
  SmallTopo fix;
  Topology& topo = fix.topo;
  const IsdAsn extra{17, 9};
  ASSERT_TRUE(topo.add_as(make_as(extra, AsRole::kNonCore)).ok());
  EXPECT_FALSE(topo.add_link({.a = extra, .b = kCore17,
                              .type = LinkType::kParentChild}).ok());
}

TEST(Topology, PeeringOnlyBetweenNonCore) {
  SmallTopo fix;
  EXPECT_FALSE(fix.topo.add_link({.a = kCore17, .b = kLeaf17b,
                                  .type = LinkType::kPeer}).ok());
  EXPECT_TRUE(fix.topo.add_link({.a = kLeaf17, .b = kLeaf17b,
                                 .type = LinkType::kPeer}).ok());
}

TEST(Topology, InterfaceIdsArePerAsAndUnique) {
  SmallTopo fix;
  // kCore17 has three links -> interfaces 1,2,3 on its side.
  std::vector<std::uint16_t> core17_interfaces;
  for (const AsLink& link : fix.topo.links()) {
    if (link.a == kCore17) core17_interfaces.push_back(link.interface_a);
    if (link.b == kCore17) core17_interfaces.push_back(link.interface_b);
  }
  std::sort(core17_interfaces.begin(), core17_interfaces.end());
  EXPECT_EQ(core17_interfaces, (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST(Topology, NeighborsByType) {
  SmallTopo fix;
  EXPECT_EQ(fix.topo.neighbors(kCore17, LinkType::kCore),
            std::vector<IsdAsn>{kCore18});
  EXPECT_EQ(fix.topo.neighbors(kCore17, LinkType::kParentChild).size(), 2u);
  EXPECT_TRUE(fix.topo.neighbors(kLeaf18, LinkType::kCore).empty());
}

TEST(Topology, ParentsAndChildren) {
  SmallTopo fix;
  EXPECT_EQ(fix.topo.parents_of(kLeaf17), std::vector<IsdAsn>{kCore17});
  EXPECT_TRUE(fix.topo.parents_of(kCore17).empty());
  EXPECT_EQ(fix.topo.children_of(kCore18), std::vector<IsdAsn>{kLeaf18});
}

TEST(Topology, CoreAsesAndIsds) {
  SmallTopo fix;
  EXPECT_EQ(fix.topo.core_ases(17), std::vector<IsdAsn>{kCore17});
  EXPECT_EQ(fix.topo.isds(), (std::vector<std::uint16_t>{17, 18}));
}

TEST(Topology, ValidatePassesOnSmallTopo) {
  SmallTopo fix;
  EXPECT_TRUE(fix.topo.validate().ok());
}

TEST(Topology, ValidateFailsWithoutCore) {
  Topology topo;
  ASSERT_TRUE(topo.add_as(make_as(kLeaf17, AsRole::kNonCore)).ok());
  EXPECT_FALSE(topo.validate().ok());
}

TEST(Topology, ValidateFailsOnOrphanLeaf) {
  SmallTopo fix;
  const IsdAsn orphan{17, 42};
  ASSERT_TRUE(fix.topo.add_as(make_as(orphan, AsRole::kNonCore)).ok());
  EXPECT_FALSE(fix.topo.validate().ok());
}

TEST(Topology, ValidateClimbsMultiLevelHierarchy) {
  SmallTopo fix;
  const IsdAsn grandchild{17, 42};
  ASSERT_TRUE(fix.topo.add_as(make_as(grandchild, AsRole::kNonCore)).ok());
  ASSERT_TRUE(fix.topo.add_link({.a = kLeaf17, .b = grandchild,
                                 .type = LinkType::kParentChild}).ok());
  EXPECT_TRUE(fix.topo.validate().ok());
}

TEST(Topology, CompileProducesNodePerAsAndDuplexLinks) {
  SmallTopo fix;
  const Topology::Compiled compiled = fix.topo.compile(42);
  EXPECT_EQ(compiled.network.node_count(), 5u);
  EXPECT_EQ(compiled.network.link_count(), 2 * fix.topo.links().size());
  EXPECT_EQ(compiled.node_of.size(), 5u);
  const simnet::NodeId a = compiled.node_of.at(kCore17);
  const simnet::NodeId b = compiled.node_of.at(kCore18);
  EXPECT_NE(compiled.network.find_link(a, b), nullptr);
  EXPECT_NE(compiled.network.find_link(b, a), nullptr);
}

TEST(Topology, CompileCarriesAsymmetricCapacities) {
  Topology topo;
  ASSERT_TRUE(topo.add_as(make_as(kCore17, AsRole::kCore)).ok());
  ASSERT_TRUE(topo.add_as(make_as(kLeaf17, AsRole::kNonCore)).ok());
  AsLink link;
  link.a = kCore17;
  link.b = kLeaf17;
  link.type = LinkType::kParentChild;
  link.capacity_ab_mbps = 40.0;
  link.capacity_ba_mbps = 14.0;
  ASSERT_TRUE(topo.add_link(link).ok());
  const Topology::Compiled compiled = topo.compile(42);
  const simnet::NodeId parent = compiled.node_of.at(kCore17);
  const simnet::NodeId child = compiled.node_of.at(kLeaf17);
  EXPECT_DOUBLE_EQ(compiled.network.find_link(parent, child)->capacity_mbps, 40.0);
  EXPECT_DOUBLE_EQ(compiled.network.find_link(child, parent)->capacity_mbps, 14.0);
}

TEST(RoleAndLinkNames, Stable) {
  EXPECT_STREQ(to_string(AsRole::kCore), "core");
  EXPECT_STREQ(to_string(AsRole::kAttachmentPoint), "attachment-point");
  EXPECT_STREQ(to_string(LinkType::kParentChild), "parent-child");
  EXPECT_STREQ(to_string(LinkType::kPeer), "peer");
}

}  // namespace
}  // namespace upin::scion
