// Tests for scion/trust: certificates, credentials, write guard.
#include "scion/trust.hpp"

#include <gtest/gtest.h>

#include "util/sha256.hpp"

namespace upin::scion {
namespace {

const IsdAsn kCore{17, make_asn(0, 0x1101)};
const IsdAsn kClient{17, make_asn(1, 0xf00)};
const IsdAsn kForeignClient{16, make_asn(0, 0x1002)};

WriteCredential make_credential(TrustStore& trust, const std::string& payload,
                                const std::string& key_label = "k1") {
  const util::LamportKeyPair key = trust.generate_client_key(key_label);
  auto cert = trust.issue_certificate(kClient, key.public_key);
  EXPECT_TRUE(cert.ok());
  WriteCredential credential;
  credential.certificate = cert.value();
  credential.subject_key = key.public_key;
  credential.batch_digest_hex = util::to_hex(util::Sha256::hash(payload));
  credential.batch_signature =
      util::lamport_sign(key.private_key, credential.batch_digest_hex);
  return credential;
}

TEST(TrustStore, RegisterCoreIdempotentPerIsd) {
  TrustStore trust;
  EXPECT_TRUE(trust.register_core(kCore).ok());
  EXPECT_TRUE(trust.register_core(kCore).ok());
  EXPECT_TRUE(trust.has_core_for(17));
  EXPECT_FALSE(trust.has_core_for(16));
}

TEST(TrustStore, SecondCoreForIsdRejected) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  EXPECT_EQ(trust.register_core(IsdAsn(17, 99)).error().code,
            util::ErrorCode::kConflict);
}

TEST(TrustStore, IssueRequiresCoreForSubjectIsd) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  const auto key = trust.generate_client_key("k");
  EXPECT_FALSE(trust.issue_certificate(kForeignClient, key.public_key).ok());
  EXPECT_TRUE(trust.issue_certificate(kClient, key.public_key).ok());
}

TEST(TrustStore, CertificateVerifies) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  const auto key = trust.generate_client_key("k");
  const auto cert = trust.issue_certificate(kClient, key.public_key);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(trust.verify_certificate(cert.value()).ok());
}

TEST(TrustStore, SerialsIncreaseAndRotateKeys) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  const auto k1 = trust.generate_client_key("a");
  const auto k2 = trust.generate_client_key("b");
  const auto cert1 = trust.issue_certificate(kClient, k1.public_key);
  const auto cert2 = trust.issue_certificate(kClient, k2.public_key);
  ASSERT_TRUE(cert1.ok());
  ASSERT_TRUE(cert2.ok());
  EXPECT_LT(cert1.value().serial, cert2.value().serial);
  EXPECT_TRUE(trust.verify_certificate(cert1.value()).ok());
  EXPECT_TRUE(trust.verify_certificate(cert2.value()).ok());
}

TEST(TrustStore, TamperedCertificateRejected) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  const auto key = trust.generate_client_key("k");
  auto cert = trust.issue_certificate(kClient, key.public_key);
  ASSERT_TRUE(cert.ok());
  Certificate tampered = cert.value();
  tampered.subject_fingerprint_hex[0] =
      tampered.subject_fingerprint_hex[0] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(trust.verify_certificate(tampered).ok());
}

TEST(TrustStore, UnknownIssuerOrSerialRejected) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  const auto key = trust.generate_client_key("k");
  auto cert = trust.issue_certificate(kClient, key.public_key);
  ASSERT_TRUE(cert.ok());
  Certificate wrong_serial = cert.value();
  wrong_serial.serial = 999;
  EXPECT_FALSE(trust.verify_certificate(wrong_serial).ok());
  Certificate wrong_issuer = cert.value();
  wrong_issuer.issuer = IsdAsn(18, 1);
  EXPECT_FALSE(trust.verify_certificate(wrong_issuer).ok());
}

TEST(TrustStore, CredentialRoundTripVerifies) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  WriteCredential credential = make_credential(trust, "batch payload");
  EXPECT_TRUE(trust.verify_credential(credential).ok());
}

TEST(TrustStore, OneTimeKeyReuseRejected) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  WriteCredential credential = make_credential(trust, "payload");
  ASSERT_TRUE(trust.verify_credential(credential).ok());
  const auto reuse = trust.verify_credential(credential);
  ASSERT_FALSE(reuse.ok());
  EXPECT_EQ(reuse.error().code, util::ErrorCode::kPermissionDenied);
}

TEST(TrustStore, WrongBatchSignatureRejected) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  WriteCredential credential = make_credential(trust, "payload");
  credential.batch_digest_hex =
      util::to_hex(util::Sha256::hash("different payload"));
  EXPECT_FALSE(trust.verify_credential(credential).ok());
}

TEST(TrustStore, KeyNotMatchingCertificateRejected) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  WriteCredential credential = make_credential(trust, "payload");
  const auto other = trust.generate_client_key("other");
  credential.subject_key = other.public_key;
  credential.batch_signature =
      util::lamport_sign(other.private_key, credential.batch_digest_hex);
  EXPECT_FALSE(trust.verify_credential(credential).ok());
}

TEST(TrustStore, CredentialJsonRoundTrip) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  const WriteCredential credential = make_credential(trust, "payload");
  const util::Value encoded = TrustStore::encode_credential(credential);
  const auto decoded = TrustStore::decode_credential(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().certificate.subject, kClient);
  EXPECT_EQ(decoded.value().certificate.serial, credential.certificate.serial);
  EXPECT_EQ(decoded.value().batch_digest_hex, credential.batch_digest_hex);
  EXPECT_TRUE(trust.verify_credential(decoded.value()).ok());
}

TEST(TrustStore, DecodeRejectsMissingOrCorruptFields) {
  EXPECT_FALSE(TrustStore::decode_credential(util::Value()).ok());
  util::Value partial = util::Value::object({{"subject", "17-ffaa:1:f00"}});
  EXPECT_FALSE(TrustStore::decode_credential(partial).ok());
}

TEST(TrustStore, WriteGuardEndToEnd) {
  TrustStore trust;
  ASSERT_TRUE(trust.register_core(kCore).ok());
  docdb::Database db;
  db.set_write_guard(trust.make_write_guard());

  const WriteCredential credential = make_credential(trust, "docs");
  const auto accepted = db.guarded_insert(
      "paths_stats", util::Value::object({{"_id", "2_1_0"}}),
      TrustStore::encode_credential(credential));
  EXPECT_TRUE(accepted.ok());

  const auto rejected = db.guarded_insert(
      "paths_stats", util::Value::object({{"_id", "2_1_1"}}), util::Value());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, util::ErrorCode::kPermissionDenied);
}

}  // namespace
}  // namespace upin::scion
