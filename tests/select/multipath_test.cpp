// Tests for select/multipath: weight derivation, k clamping, and the
// shared-bottleneck report, over hand-built selections (no campaign).
#include "select/multipath.hpp"

#include <gtest/gtest.h>

#include "scion/isd_asn.hpp"

namespace upin::select {
namespace {

scion::IsdAsn ia(std::uint16_t isd, std::uint16_t low) {
  return scion::IsdAsn{isd, scion::make_asn(0, low)};
}

RankedPath make_ranked(std::string path_id, double score,
                       std::vector<scion::IsdAsn> hops) {
  RankedPath ranked;
  ranked.summary.path_id = std::move(path_id);
  ranked.summary.sequence = "seq-" + ranked.summary.path_id;
  ranked.summary.hops = std::move(hops);
  ranked.score = score;
  return ranked;
}

Selection make_selection(std::vector<RankedPath> ranked) {
  Selection selection;
  selection.strategy = "paper-objective";
  selection.request_description = "server 3, objective lowest-latency";
  selection.ranked = std::move(ranked);
  return selection;
}

TEST(PlanMultipath, RejectsZeroK) {
  const auto plan = plan_multipath(make_selection({make_ranked("p1", 1.0, {})}), 0);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, util::ErrorCode::kInvalidArgument);
}

TEST(PlanMultipath, EmptySelectionIsNotFound) {
  const auto plan = plan_multipath(make_selection({}), 2);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, util::ErrorCode::kNotFound);
  EXPECT_NE(plan.error().message.find("server 3"), std::string::npos)
      << "the error should carry the request description";
}

TEST(PlanMultipath, EqualScoresGiveEqualWeights) {
  const auto plan = plan_multipath(
      make_selection({make_ranked("p1", 12.0, {}), make_ranked("p2", 12.0, {}),
                      make_ranked("p3", 12.0, {})}),
      3);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().subflows.size(), 3u);
  double total = 0.0;
  for (const MultipathSubflow& subflow : plan.value().subflows) {
    EXPECT_DOUBLE_EQ(subflow.weight, 1.0 / 3.0);
    total += subflow.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PlanMultipath, BetterScoresGetLargerShares) {
  // One full score-scale behind the winner halves the share: with
  // s_min = 10 and s_2 = 20, raw weights are 1 and 1/2.
  const auto plan = plan_multipath(
      make_selection({make_ranked("fast", 10.0, {}), make_ranked("slow", 20.0, {})}),
      2);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().subflows.size(), 2u);
  const MultipathSubflow& fast = plan.value().subflows[0];
  const MultipathSubflow& slow = plan.value().subflows[1];
  EXPECT_GT(fast.weight, slow.weight);
  EXPECT_NEAR(fast.weight, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(slow.weight, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(fast.weight + slow.weight, 1.0, 1e-12);
}

TEST(PlanMultipath, KIsClampedToTheAdmittedCount) {
  const auto plan = plan_multipath(
      make_selection({make_ranked("p1", 1.0, {}), make_ranked("p2", 2.0, {})}),
      8);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().subflows.size(), 2u);
}

TEST(PlanMultipath, TakesTheKBestInRankedOrder) {
  const auto plan = plan_multipath(
      make_selection({make_ranked("a", 1.0, {}), make_ranked("b", 2.0, {}),
                      make_ranked("c", 3.0, {})}),
      2);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().subflows.size(), 2u);
  EXPECT_EQ(plan.value().subflows[0].summary.path_id, "a");
  EXPECT_EQ(plan.value().subflows[1].summary.path_id, "b");
}

TEST(PlanMultipath, SharedEarlyHopsAreReported) {
  // Both paths enter through the same attachment point (the interior hop
  // right after the shared source) and diverge afterwards.
  const std::vector<scion::IsdAsn> via_ap1_a = {ia(17, 0xf00), ia(17, 0x1107),
                                                ia(17, 0x1101), ia(16, 0x1002)};
  const std::vector<scion::IsdAsn> via_ap1_b = {ia(17, 0xf00), ia(17, 0x1107),
                                                ia(16, 0x1001), ia(16, 0x1002)};
  const auto plan = plan_multipath(
      make_selection({make_ranked("p1", 1.0, via_ap1_a),
                      make_ranked("p2", 2.0, via_ap1_b)}),
      2);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().shared_bottlenecks.size(), 1u);
  const SharedBottleneckHop& shared = plan.value().shared_bottlenecks.front();
  EXPECT_EQ(shared.hop, ia(17, 0x1107));
  EXPECT_EQ(shared.subflows, (std::vector<std::size_t>{0, 1}));
}

TEST(PlanMultipath, EndpointsNeverCountAsBottlenecks) {
  // Identical source and destination, fully disjoint interiors: aggregation
  // is clean even though both endpoints are "shared".
  const auto plan = plan_multipath(
      make_selection({make_ranked("p1", 1.0,
                                  {ia(17, 0xf00), ia(17, 0x1107), ia(16, 0x1002)}),
                      make_ranked("p2", 2.0,
                                  {ia(17, 0xf00), ia(17, 0x1108), ia(16, 0x1002)})}),
      2);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().shared_bottlenecks.empty());
}

TEST(PlanMultipath, EarlyHopWindowBoundsTheScan) {
  // The shared hop sits third in the interior — outside the default
  // window of 2, inside a window of 3.
  const std::vector<scion::IsdAsn> long_a = {ia(17, 0xf00), ia(17, 0x1107),
                                             ia(17, 0x1101), ia(19, 0x1301),
                                             ia(16, 0x1002)};
  const std::vector<scion::IsdAsn> long_b = {ia(17, 0xf00), ia(17, 0x1108),
                                             ia(17, 0x1102), ia(19, 0x1301),
                                             ia(16, 0x1002)};
  const Selection selection = make_selection(
      {make_ranked("p1", 1.0, long_a), make_ranked("p2", 2.0, long_b)});
  const auto narrow = plan_multipath(selection, 2, 2);
  ASSERT_TRUE(narrow.ok());
  EXPECT_TRUE(narrow.value().shared_bottlenecks.empty());
  const auto wide = plan_multipath(selection, 2, 3);
  ASSERT_TRUE(wide.ok());
  ASSERT_EQ(wide.value().shared_bottlenecks.size(), 1u);
  EXPECT_EQ(wide.value().shared_bottlenecks.front().hop, ia(19, 0x1301));
}

TEST(PlanMultipath, ToJsonRendersTheFullPlan) {
  const auto plan = plan_multipath(
      make_selection({make_ranked("p1", 1.0,
                                  {ia(17, 0xf00), ia(17, 0x1107), ia(16, 0x1002)}),
                      make_ranked("p2", 2.0,
                                  {ia(17, 0xf00), ia(17, 0x1107), ia(16, 0x1002)})}),
      2);
  ASSERT_TRUE(plan.ok());
  const util::Value json = plan.value().to_json();
  EXPECT_EQ(json.get("strategy")->as_string(), "paper-objective");
  const auto& subflows = json.get("subflows")->as_array();
  ASSERT_EQ(subflows.size(), 2u);
  EXPECT_EQ(subflows[0].get("path_id")->as_string(), "p1");
  EXPECT_EQ(subflows[0].get("sequence")->as_string(), "seq-p1");
  EXPECT_DOUBLE_EQ(subflows[0].get("score")->as_double(), 1.0);
  EXPECT_GT(subflows[0].get("weight")->as_double(),
            subflows[1].get("weight")->as_double());
  const auto& bottlenecks = json.get("shared_bottlenecks")->as_array();
  ASSERT_EQ(bottlenecks.size(), 1u);
  EXPECT_EQ(bottlenecks[0].get("hop")->as_string(),
            ia(17, 0x1107).to_string());
  ASSERT_EQ(bottlenecks[0].get("subflows")->as_array().size(), 2u);
  EXPECT_EQ(bottlenecks[0].get("subflows")->as_array()[0].as_int(), 0);
  EXPECT_EQ(bottlenecks[0].get("subflows")->as_array()[1].as_int(), 1);
}

}  // namespace
}  // namespace upin::select
