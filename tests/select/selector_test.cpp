// Tests for select/selector: aggregation, constraints, ranking.
#include "select/selector.hpp"

#include <gtest/gtest.h>

#include "measure/schema.hpp"
#include "measure/testsuite.hpp"

namespace upin::select {
namespace {

using measure::StatsSample;
using scion::scionlab::kIreland;
using scion::scionlab::kOhio;
using scion::scionlab::kSingapore;

/// Shared campaign dataset: Ireland, 6 iterations.  Built once.
class SelectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new scion::ScionlabEnv(scion::scionlab_topology());
    db_ = new docdb::Database();
    apps::ScionHost host(*env_, 42, env_->user_as, "10.0.8.1");
    measure::TestSuiteConfig config;
    config.iterations = 6;
    config.server_ids = {{3}};
    measure::TestSuite suite(host, *db_, config);
    ASSERT_TRUE(suite.run().ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete env_;
    db_ = nullptr;
    env_ = nullptr;
  }

  [[nodiscard]] PathSelector selector() const {
    return PathSelector(*db_, env_->topology);
  }

  static scion::ScionlabEnv* env_;
  static docdb::Database* db_;
};

scion::ScionlabEnv* SelectorTest::env_ = nullptr;
docdb::Database* SelectorTest::db_ = nullptr;

TEST_F(SelectorTest, SummarizeAggregatesEveryPath) {
  const auto summaries = selector().summarize(3);
  ASSERT_TRUE(summaries.ok());
  EXPECT_EQ(summaries.value().size(), db_->collection(measure::kPaths).size());
  for (const PathSummary& s : summaries.value()) {
    EXPECT_EQ(s.server_id, 3);
    EXPECT_EQ(s.samples, 6u);
    ASSERT_TRUE(s.latency_ms.has_value());
    EXPECT_GT(s.latency_ms->median, 0.0);
    EXPECT_FALSE(s.hops.empty());
    EXPECT_EQ(s.hops.size(), s.hop_count);
    EXPECT_TRUE(s.mean_bw_down_mtu.has_value());
  }
}

TEST_F(SelectorTest, SummarizeUnknownServerIsEmpty) {
  const auto summaries = selector().summarize(99);
  ASSERT_TRUE(summaries.ok());
  EXPECT_TRUE(summaries.value().empty());
}

TEST_F(SelectorTest, ParallelSummarizeMatchesSequential) {
  util::ThreadPool pool(4);
  const auto sequential = selector().summarize(3);
  const auto parallel = selector().summarize_parallel(3, pool);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential.value().size(), parallel.value().size());
  for (std::size_t i = 0; i < sequential.value().size(); ++i) {
    EXPECT_EQ(sequential.value()[i].path_id, parallel.value()[i].path_id);
    EXPECT_DOUBLE_EQ(sequential.value()[i].latency_ms->median,
                     parallel.value()[i].latency_ms->median);
  }
}

TEST_F(SelectorTest, LowestLatencySelectsEuropeanPath) {
  UserRequest request;
  request.server_id = 3;
  request.objective = Objective::kLowestLatency;
  const auto best = selector().best(request);
  ASSERT_TRUE(best.ok());
  // The winner must avoid both long-distance detours.
  for (const scion::IsdAsn hop : best.value().summary.hops) {
    EXPECT_NE(hop, kOhio);
    EXPECT_NE(hop, kSingapore);
  }
  EXPECT_LT(best.value().summary.latency_ms->median, 60.0);
}

TEST_F(SelectorTest, RankingIsMonotoneInScore) {
  UserRequest request;
  request.server_id = 3;
  request.objective = Objective::kLowestLatency;
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  double previous = -1.0;
  for (const RankedPath& ranked : selection.value().ranked) {
    EXPECT_GE(ranked.score, previous);
    previous = ranked.score;
  }
}

TEST_F(SelectorTest, HighestBandwidthDirectionMatters) {
  UserRequest down;
  down.server_id = 3;
  down.objective = Objective::kHighestBandwidth;
  down.bw_direction = BwDirection::kDownstream;
  UserRequest up = down;
  up.bw_direction = BwDirection::kUpstream;
  const auto best_down = selector().best(down);
  const auto best_up = selector().best(up);
  ASSERT_TRUE(best_down.ok());
  ASSERT_TRUE(best_up.ok());
  EXPECT_GT(*best_down.value().summary.bandwidth(BwDirection::kDownstream),
            *best_up.value().summary.bandwidth(BwDirection::kUpstream))
      << "downstream capacity exceeds upstream (paper §6.2)";
}

TEST_F(SelectorTest, MostConsistentPrefersLowIqr) {
  UserRequest request;
  request.server_id = 3;
  request.objective = Objective::kMostConsistent;
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  ASSERT_FALSE(selection.value().ranked.empty());
  // Every later-ranked path has an IQR at least as large.
  const double best_iqr =
      selection.value().ranked.front().summary.latency_ms->iqr;
  for (const RankedPath& ranked : selection.value().ranked) {
    EXPECT_GE(ranked.summary.latency_ms->iqr, best_iqr);
  }
}

TEST_F(SelectorTest, ExcludeCountrySingaporeRemovesDetours) {
  UserRequest request;
  request.server_id = 3;
  request.exclude_countries = {"SG"};
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  for (const RankedPath& ranked : selection.value().ranked) {
    for (const scion::IsdAsn hop : ranked.summary.hops) {
      EXPECT_NE(hop, kSingapore);
    }
  }
  bool saw_rejection = false;
  for (const auto& [path_id, reason] : selection.value().rejected) {
    if (reason.find("SG") != std::string::npos) saw_rejection = true;
  }
  EXPECT_TRUE(saw_rejection);
}

TEST_F(SelectorTest, ExcludeCountryUsRemovesOhioPaths) {
  UserRequest request;
  request.server_id = 3;
  request.exclude_countries = {"US"};
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  for (const RankedPath& ranked : selection.value().ranked) {
    for (const scion::IsdAsn hop : ranked.summary.hops) {
      EXPECT_NE(env_->topology.find_as(hop)->country, "US");
    }
  }
}

TEST_F(SelectorTest, ExcludeOperatorAwsKillsAllIrelandPaths) {
  // The destination itself is AWS: excluding the operator must reject
  // every path — the selector reports why instead of picking something.
  UserRequest request;
  request.server_id = 3;
  request.exclude_operators = {"AWS"};
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(selection.value().ranked.empty());
  EXPECT_EQ(selection.value().rejected.size(),
            db_->collection(measure::kPaths).size());
  EXPECT_EQ(selector().best(request).error().code, util::ErrorCode::kNotFound);
}

TEST_F(SelectorTest, ExcludeSpecificAs) {
  UserRequest request;
  request.server_id = 3;
  request.exclude_ases = {kOhio};
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  for (const RankedPath& ranked : selection.value().ranked) {
    for (const scion::IsdAsn hop : ranked.summary.hops) EXPECT_NE(hop, kOhio);
  }
}

TEST_F(SelectorTest, ExcludeIsdAndAllowList) {
  UserRequest exclude;
  exclude.server_id = 3;
  exclude.exclude_isds = {19};
  const auto excluded = selector().select(exclude);
  ASSERT_TRUE(excluded.ok());
  for (const RankedPath& ranked : excluded.value().ranked) {
    for (const std::int64_t isd : ranked.summary.isds) EXPECT_NE(isd, 19);
  }

  UserRequest allow;
  allow.server_id = 3;
  allow.allowed_isds = {16, 17};
  const auto allowed = selector().select(allow);
  ASSERT_TRUE(allowed.ok());
  ASSERT_FALSE(allowed.value().ranked.empty());
  for (const RankedPath& ranked : allowed.value().ranked) {
    for (const std::int64_t isd : ranked.summary.isds) {
      EXPECT_TRUE(isd == 16 || isd == 17);
    }
  }
}

TEST_F(SelectorTest, MaxLatencyConstraintFilters) {
  UserRequest request;
  request.server_id = 3;
  request.max_latency_ms = 60.0;
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  ASSERT_FALSE(selection.value().ranked.empty());
  for (const RankedPath& ranked : selection.value().ranked) {
    EXPECT_LE(ranked.summary.latency_ms->median, 60.0);
  }
  EXPECT_FALSE(selection.value().rejected.empty())
      << "the Singapore/Ohio layers must be rejected";
}

TEST_F(SelectorTest, MinBandwidthConstraintFilters) {
  UserRequest request;
  request.server_id = 3;
  request.objective = Objective::kHighestBandwidth;
  request.min_bandwidth_mbps = 5000.0;  // impossible
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(selection.value().ranked.empty());
}

TEST_F(SelectorTest, MinSamplesConstraint) {
  UserRequest request;
  request.server_id = 3;
  request.min_samples = 7;  // campaign ran 6 iterations
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(selection.value().ranked.empty());
}

TEST_F(SelectorTest, FreshnessWindowRestrictsSamples) {
  // The campaign ran 6 iterations back to back; a window starting after
  // the midpoint keeps only the later iterations' samples.
  const auto all = selector().summarize(3);
  ASSERT_TRUE(all.ok());
  ASSERT_FALSE(all.value().empty());
  const std::size_t full_samples = all.value().front().samples;
  ASSERT_EQ(full_samples, 6u);

  // Find the midpoint timestamp from the stored documents.
  std::vector<std::int64_t> timestamps;
  db_->collection(measure::kPathsStats)
      .for_each([&](const docdb::Document& doc) {
        timestamps.push_back(doc.get("timestamp_ms")->as_int());
      });
  std::sort(timestamps.begin(), timestamps.end());
  const std::int64_t midpoint = timestamps[timestamps.size() / 2];

  const auto windowed = selector().summarize(3, midpoint);
  ASSERT_TRUE(windowed.ok());
  for (const PathSummary& s : windowed.value()) {
    EXPECT_LT(s.samples, full_samples);
    EXPECT_GT(s.samples, 0u);
  }
}

TEST_F(SelectorTest, FreshnessBoundaryIsInclusive) {
  // The staleness threshold is $gte: a sample stamped *exactly* at
  // since_timestamp_ms is still fresh; one millisecond past it is not.
  std::vector<std::int64_t> timestamps;
  db_->collection(measure::kPathsStats)
      .for_each([&](const docdb::Document& doc) {
        timestamps.push_back(doc.get("timestamp_ms")->as_int());
      });
  ASSERT_FALSE(timestamps.empty());
  const std::int64_t latest =
      *std::max_element(timestamps.begin(), timestamps.end());

  const auto at_boundary = selector().summarize(3, latest);
  ASSERT_TRUE(at_boundary.ok());
  std::size_t samples_at_boundary = 0;
  for (const PathSummary& s : at_boundary.value()) {
    samples_at_boundary += s.samples;
  }
  EXPECT_GT(samples_at_boundary, 0u)
      << "a sample taken exactly at the threshold counts as fresh";

  const auto past_boundary = selector().summarize(3, latest + 1);
  ASSERT_TRUE(past_boundary.ok());
  for (const PathSummary& s : past_boundary.value()) {
    EXPECT_EQ(s.samples, 0u) << "nothing is newer than the newest sample";
  }
}

TEST_F(SelectorTest, FreshnessWindowInTheFutureRejectsEverything) {
  UserRequest request;
  request.server_id = 3;
  request.since_timestamp_ms = std::int64_t{1} << 60;
  const auto selection = selector().select(request);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(selection.value().ranked.empty())
      << "no samples in the window -> min_samples rejects all paths";
  EXPECT_NE(request.describe().find("samples since"), std::string::npos);
}

TEST_F(SelectorTest, RationaleMentionsTheObjective) {
  UserRequest request;
  request.server_id = 3;
  request.objective = Objective::kLowestLatency;
  const auto best = selector().best(request);
  ASSERT_TRUE(best.ok());
  EXPECT_NE(best.value().rationale.find("median latency"), std::string::npos);
}

TEST_F(SelectorTest, SelectOnMissingCollectionsFails) {
  docdb::Database empty;
  PathSelector fresh(empty, env_->topology);
  UserRequest request;
  request.server_id = 3;
  EXPECT_FALSE(fresh.select(request).ok());
}

TEST(SelectorScore, LowestLossTieBreaksByLatency) {
  PathSummary fast, slow;
  fast.mean_loss_pct = slow.mean_loss_pct = 0.0;
  fast.latency_ms = util::BoxStats{};
  fast.latency_ms->median = 20.0;
  slow.latency_ms = util::BoxStats{};
  slow.latency_ms->median = 200.0;
  UserRequest request;
  request.objective = Objective::kLowestLoss;
  EXPECT_LT(*PathSelector::score(fast, request),
            *PathSelector::score(slow, request));
  // Any real loss difference dominates the latency tie-break.
  slow.mean_loss_pct = 0.0;
  fast.mean_loss_pct = 0.1;
  EXPECT_GT(*PathSelector::score(fast, request),
            *PathSelector::score(slow, request));
}

TEST(SelectorScore, StaticBehaviour) {
  PathSummary summary;
  UserRequest request;
  request.objective = Objective::kLowestLatency;
  EXPECT_FALSE(PathSelector::score(summary, request).has_value())
      << "no latency data -> no score";
  summary.latency_ms = util::BoxStats{};
  summary.latency_ms->median = 42.0;
  summary.latency_samples = 3;
  EXPECT_DOUBLE_EQ(*PathSelector::score(summary, request), 42.0);

  request.objective = Objective::kHighestBandwidth;
  EXPECT_FALSE(PathSelector::score(summary, request).has_value());
  summary.mean_bw_down_mtu = 11.5;
  EXPECT_DOUBLE_EQ(*PathSelector::score(summary, request), -11.5);
}

TEST(RequestDescribe, MentionsAllConstraints) {
  UserRequest request;
  request.server_id = 3;
  request.objective = Objective::kMostConsistent;
  request.max_latency_ms = 50.0;
  request.exclude_countries = {"US", "SG"};
  request.exclude_isds = {19};
  const std::string text = request.describe();
  EXPECT_NE(text.find("server 3"), std::string::npos);
  EXPECT_NE(text.find("most-consistent"), std::string::npos);
  EXPECT_NE(text.find("50.0ms"), std::string::npos);
  EXPECT_NE(text.find("US,SG"), std::string::npos);
  EXPECT_NE(text.find("ISD 19"), std::string::npos);
}

}  // namespace
}  // namespace upin::select
