// Tests for select/strategy: the registry, knob validation, explain
// traces, packet-size-aware bandwidth, and the golden bit-identity of
// paper-objective against a verbatim copy of the legacy pipeline.
#include "select/strategy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "measure/testsuite.hpp"
#include "select/selector.hpp"
#include "util/strings.hpp"

namespace upin::select {
namespace {

using util::Value;

/// Shared campaign dataset: Ireland, 6 iterations.  Built once.
class StrategyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new scion::ScionlabEnv(scion::scionlab_topology());
    db_ = new docdb::Database();
    apps::ScionHost host(*env_, 42, env_->user_as, "10.0.8.1");
    measure::TestSuiteConfig config;
    config.iterations = 6;
    config.server_ids = {{3}};
    measure::TestSuite suite(host, *db_, config);
    ASSERT_TRUE(suite.run().ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete env_;
    db_ = nullptr;
    env_ = nullptr;
  }

  [[nodiscard]] PathSelector selector() const {
    return PathSelector(*db_, env_->topology);
  }

  static scion::ScionlabEnv* env_;
  static docdb::Database* db_;
};

scion::ScionlabEnv* StrategyTest::env_ = nullptr;
docdb::Database* StrategyTest::db_ = nullptr;

// ------------------------------------------------------------- registry

TEST(StrategyRegistry, GlobalShipsTheFiveBuiltins) {
  const auto keys = StrategyRegistry::global().keys();
  const std::vector<std::string> expected = {
      std::string(kPaperObjective), std::string(kLatencyGreedy),
      std::string(kLossAverse), std::string(kGeoConstrained),
      std::string(kDisjointnessMax)};
  for (const std::string& key : expected) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), key), keys.end())
        << "missing builtin " << key;
    const auto* entry = StrategyRegistry::global().find(key);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->description.empty());
  }
  EXPECT_GE(keys.size(), 5u);
}

TEST(StrategyRegistry, CreateUnknownKeyFails) {
  const auto made = StrategyRegistry::global().create("no-such-strategy");
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.error().code, util::ErrorCode::kNotFound);
}

TEST(StrategyRegistry, CreateValidatesKnobNames) {
  util::JsonObject knobs;
  knobs.set("bogus_knob", Value(1.0));
  const auto made = StrategyRegistry::global().create(kLatencyGreedy, knobs);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.error().code, util::ErrorCode::kInvalidArgument);
}

TEST(StrategyRegistry, CreateValidatesKnobTypes) {
  util::JsonObject knobs;
  knobs.set("statistic", Value(true));  // declared as a string knob
  const auto made = StrategyRegistry::global().create(kLatencyGreedy, knobs);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.error().code, util::ErrorCode::kInvalidArgument);
}

TEST(StrategyRegistry, NumericKnobsAreInterchangeable) {
  util::JsonObject knobs;
  knobs.set("pool", Value(4.0));  // declared int, given a double
  EXPECT_TRUE(StrategyRegistry::global().create(kDisjointnessMax, knobs).ok());
}

TEST(StrategyRegistry, FactoryVetoesBadKnobValues) {
  util::JsonObject knobs;
  knobs.set("statistic", Value(std::string("p99")));  // not a box statistic
  const auto made = StrategyRegistry::global().create(kLatencyGreedy, knobs);
  ASSERT_FALSE(made.ok());
  EXPECT_EQ(made.error().code, util::ErrorCode::kInvalidArgument);
}

TEST(StrategyRegistry, KnobSchemaRendersTypesAndDefaults) {
  const Value schema = StrategyRegistry::global().knob_schema(kLossAverse);
  const Value* weight = schema.get("latency_weight");
  ASSERT_NE(weight, nullptr);
  EXPECT_EQ(weight->get("type")->as_string(), "number");
  EXPECT_DOUBLE_EQ(weight->get("default")->as_double(), 0.01);
  EXPECT_TRUE(StrategyRegistry::global().knob_schema("nope").is_null());
}

TEST(StrategyRegistry, AddRejectsDuplicatesAndEmptyKeys) {
  StrategyRegistry registry;
  StrategyRegistry::Entry entry;
  entry.description = "noop";
  entry.factory = [](const util::JsonObject&) {
    return std::unique_ptr<PathSelectionStrategy>();
  };
  EXPECT_TRUE(registry.add("mine", entry).ok());
  EXPECT_EQ(registry.add("mine", entry).error().code,
            util::ErrorCode::kConflict);
  EXPECT_EQ(registry.add("", entry).error().code,
            util::ErrorCode::kInvalidArgument);
}

// ------------------------------------- packet-size-aware bandwidth (fix)

TEST(PathSummaryBandwidth, PacketSizeSelectsTheMeasuredColumn) {
  PathSummary summary;
  summary.mtu = 1452.0;
  summary.mean_bw_down_mtu = 30.0;
  summary.mean_bw_down_64 = 4.0;
  // Small packets read the 64 B column, large packets the MTU column.
  EXPECT_DOUBLE_EQ(*summary.bandwidth(BwDirection::kDownstream, 64.0), 4.0);
  EXPECT_DOUBLE_EQ(*summary.bandwidth(BwDirection::kDownstream, 1400.0), 30.0);
  // Legacy single-argument lookup is unchanged: MTU column only.
  EXPECT_DOUBLE_EQ(*summary.bandwidth(BwDirection::kDownstream), 30.0);
}

TEST(PathSummaryBandwidth, FallsBackWhenThePreferredColumnIsMissing) {
  PathSummary summary;
  summary.mtu = 1452.0;
  summary.mean_bw_up_mtu = 12.0;
  EXPECT_DOUBLE_EQ(*summary.bandwidth(BwDirection::kUpstream, 64.0), 12.0);
  summary.mean_bw_up_mtu = std::nullopt;
  EXPECT_FALSE(summary.bandwidth(BwDirection::kUpstream, 64.0).has_value());
}

TEST(RequestBandwidth, ProbeBytesOptInChangesTheFigure) {
  PathSummary summary;
  summary.mtu = 1452.0;
  summary.mean_bw_down_mtu = 30.0;
  summary.mean_bw_down_64 = 4.0;
  UserRequest request;
  // Unset: bit-identical to the legacy MTU-only lookup.
  EXPECT_DOUBLE_EQ(*request_bandwidth(summary, request), 30.0);
  request.bw_probe_bytes = 64.0;
  EXPECT_DOUBLE_EQ(*request_bandwidth(summary, request), 4.0);
}

TEST_F(StrategyTest, SmallPacketBandwidthConstraintUses64ByteColumn) {
  // The campaign measures both columns; pick the path where they differ
  // most and set the threshold between them — the admission verdict must
  // then flip when the request opts into 64 B probes.
  const auto summaries = selector().summarize(3);
  ASSERT_TRUE(summaries.ok());
  const PathSummary* sample = nullptr;
  double gap = 0.0;
  for (const PathSummary& candidate : summaries.value()) {
    if (!candidate.mean_bw_down_mtu.has_value() ||
        !candidate.mean_bw_down_64.has_value()) {
      continue;
    }
    const double d =
        std::abs(*candidate.mean_bw_down_64 - *candidate.mean_bw_down_mtu);
    if (d > gap) {
      gap = d;
      sample = &candidate;
    }
  }
  ASSERT_NE(sample, nullptr);
  ASSERT_GT(gap, 1e-6) << "campaign produced identical 64B/MTU figures";
  const double threshold =
      (*sample->mean_bw_down_64 + *sample->mean_bw_down_mtu) / 2.0;

  UserRequest mtu_sized;
  mtu_sized.server_id = 3;
  mtu_sized.min_bandwidth_mbps = threshold;
  UserRequest small = mtu_sized;
  small.bw_probe_bytes = 64.0;

  const auto selector_ = selector();
  const auto with_mtu = selector_.select_with(kPaperObjective, mtu_sized);
  const auto with_64 = selector_.select_with(kPaperObjective, small);
  ASSERT_TRUE(with_mtu.ok());
  ASSERT_TRUE(with_64.ok());
  const auto admitted = [&](const Selection& s, const std::string& id) {
    for (const RankedPath& r : s.ranked) {
      if (r.summary.path_id == id) return true;
    }
    return false;
  };
  // Whichever column clears the threshold, the verdicts must differ.
  EXPECT_EQ(admitted(with_mtu.value(), sample->path_id),
            *sample->mean_bw_down_mtu >= threshold);
  EXPECT_EQ(admitted(with_64.value(), sample->path_id),
            *sample->mean_bw_down_64 >= threshold);
  EXPECT_NE(admitted(with_mtu.value(), sample->path_id),
            admitted(with_64.value(), sample->path_id))
      << "a 64 B flow must be judged against the 64 B bandwidth figures";
}

// ----------------------------------------------------------- explain()

TEST_F(StrategyTest, ExplainRendersTheFullDecisionTrace) {
  UserRequest request;
  request.server_id = 3;
  request.max_latency_ms = 60.0;
  const auto selection = selector().select_with(kPaperObjective, request);
  ASSERT_TRUE(selection.ok());
  ASSERT_FALSE(selection.value().ranked.empty());
  ASSERT_FALSE(selection.value().rejected.empty());

  const Value trace = selection.value().explain();
  EXPECT_EQ(trace.get("strategy")->as_string(), "paper-objective");
  EXPECT_EQ(trace.get("request")->as_string(), request.describe());

  const Value* admitted = trace.get("admitted");
  ASSERT_NE(admitted, nullptr);
  ASSERT_EQ(admitted->as_array().size(), selection.value().ranked.size());
  const Value& first = admitted->as_array().front();
  EXPECT_EQ(first.get("rank")->as_int(), 0);
  EXPECT_EQ(first.get("path_id")->as_string(),
            selection.value().ranked.front().summary.path_id);
  ASSERT_NE(first.get("score_terms"), nullptr);
  EXPECT_FALSE(first.get("score_terms")->as_object().empty());

  const Value* rejected = trace.get("rejected");
  ASSERT_NE(rejected, nullptr);
  ASSERT_EQ(rejected->as_array().size(), selection.value().rejected.size());
  bool saw_failed_verdict = false;
  for (const Value& row : rejected->as_array()) {
    EXPECT_FALSE(row.get("reason")->as_string().empty());
    for (const Value& verdict : row.get("verdicts")->as_array()) {
      if (!verdict.get("passed")->as_bool()) saw_failed_verdict = true;
    }
  }
  EXPECT_TRUE(saw_failed_verdict);
}

// ------------------------------------------------ deprecated score shim

TEST(ScoreShim, StaticScoreDelegatesToPaperObjectiveScore) {
  PathSummary summary;
  summary.latency_ms = util::BoxStats{};
  summary.latency_ms->median = 37.5;
  summary.latency_samples = 4;
  summary.mean_bw_down_mtu = 18.0;
  summary.mean_loss_pct = 0.4;
  for (const Objective objective :
       {Objective::kLowestLatency, Objective::kHighestBandwidth,
        Objective::kLowestLoss, Objective::kMostConsistent}) {
    UserRequest request;
    request.objective = objective;
    const auto via_shim = PathSelector::score(summary, request);
    const auto direct = paper_objective_score(summary, request);
    ASSERT_EQ(via_shim.has_value(), direct.has_value());
    if (via_shim.has_value()) {
      EXPECT_DOUBLE_EQ(*via_shim, *direct);
    }
  }
}

// ------------------------------------------------------ the golden test
//
// A verbatim copy of the legacy PathSelector::select pipeline (the code
// this PR replaced), run against the same summaries.  paper-objective
// must reproduce its output bit for bit: same admitted order, same score
// doubles, same rationale strings, same rejection pairs.

std::optional<double> legacy_score(const PathSummary& summary,
                                   const UserRequest& request) {
  switch (request.objective) {
    case Objective::kLowestLatency:
      if (!summary.latency_ms.has_value()) return std::nullopt;
      return summary.latency_ms->median;
    case Objective::kHighestBandwidth: {
      const std::optional<double> bw = summary.bandwidth(request.bw_direction);
      if (!bw.has_value()) return std::nullopt;
      return -*bw;  // lower score = better
    }
    case Objective::kLowestLoss:
      // Tie-break equal losses by latency when available.
      return summary.mean_loss_pct * 1e6 +
             (summary.latency_ms.has_value() ? summary.latency_ms->median : 0.0);
    case Objective::kMostConsistent:
      if (!summary.latency_ms.has_value() || summary.latency_samples < 2) {
        return std::nullopt;
      }
      return summary.latency_ms->iqr;
  }
  return std::nullopt;
}

std::optional<std::string> legacy_rejection_reason(
    const scion::Topology& topology, const PathSummary& summary,
    const UserRequest& request) {
  if (summary.samples < request.min_samples) {
    return util::format("only %zu samples (need %zu)", summary.samples,
                        request.min_samples);
  }

  for (const scion::IsdAsn& hop : summary.hops) {
    const scion::AsInfo* info = topology.find_as(hop);
    if (info == nullptr) continue;
    for (const std::string& country : request.exclude_countries) {
      if (info->country == country) {
        return "traverses excluded country " + country + " (" +
               hop.to_string() + ")";
      }
    }
    for (const std::string& op : request.exclude_operators) {
      if (info->operator_name == op) {
        return "traverses excluded operator " + op + " (" + hop.to_string() +
               ")";
      }
    }
    if (std::find(request.exclude_ases.begin(), request.exclude_ases.end(),
                  hop) != request.exclude_ases.end()) {
      return "traverses excluded AS " + hop.to_string();
    }
  }
  for (const std::int64_t isd : summary.isds) {
    if (std::find(request.exclude_isds.begin(), request.exclude_isds.end(),
                  static_cast<std::uint16_t>(isd)) !=
        request.exclude_isds.end()) {
      return "traverses excluded ISD " + std::to_string(isd);
    }
    if (!request.allowed_isds.empty() &&
        std::find(request.allowed_isds.begin(), request.allowed_isds.end(),
                  static_cast<std::uint16_t>(isd)) ==
            request.allowed_isds.end()) {
      return "traverses ISD " + std::to_string(isd) +
             " outside the allow-list";
    }
  }

  if (request.max_latency_ms.has_value()) {
    if (!summary.latency_ms.has_value()) return "no latency data";
    if (summary.latency_ms->median > *request.max_latency_ms) {
      return util::format("median latency %.1fms exceeds %.1fms",
                          summary.latency_ms->median, *request.max_latency_ms);
    }
  }
  if (request.min_bandwidth_mbps.has_value()) {
    const std::optional<double> bw = summary.bandwidth(request.bw_direction);
    if (!bw.has_value()) return "no bandwidth data";
    if (*bw < *request.min_bandwidth_mbps) {
      return util::format("bandwidth %.1fMbps below %.1fMbps", *bw,
                          *request.min_bandwidth_mbps);
    }
  }
  if (request.max_loss_pct.has_value() &&
      summary.mean_loss_pct > *request.max_loss_pct) {
    return util::format("loss %.1f%% exceeds %.1f%%", summary.mean_loss_pct,
                        *request.max_loss_pct);
  }
  if (request.max_jitter_ms.has_value()) {
    if (!summary.mean_jitter_ms.has_value()) return "no jitter data";
    if (*summary.mean_jitter_ms > *request.max_jitter_ms) {
      return util::format("jitter %.1fms exceeds %.1fms",
                          *summary.mean_jitter_ms, *request.max_jitter_ms);
    }
  }

  if (!legacy_score(summary, request).has_value()) {
    return std::string("no data for objective ") + to_string(request.objective);
  }
  return std::nullopt;
}

Selection legacy_select(const scion::Topology& topology,
                        std::vector<PathSummary> summaries,
                        const UserRequest& request) {
  Selection selection;
  for (PathSummary& summary : summaries) {
    const std::optional<std::string> rejection =
        legacy_rejection_reason(topology, summary, request);
    if (rejection.has_value()) {
      selection.rejected.emplace_back(summary.path_id, *rejection);
      continue;
    }
    RankedPath ranked;
    ranked.score = *legacy_score(summary, request);
    switch (request.objective) {
      case Objective::kLowestLatency:
        ranked.rationale = util::format("median latency %.2fms over %zu samples",
                                        summary.latency_ms->median,
                                        summary.latency_samples);
        break;
      case Objective::kHighestBandwidth:
        ranked.rationale = util::format(
            "mean %s bandwidth %.2fMbps",
            request.bw_direction == BwDirection::kDownstream ? "downstream"
                                                             : "upstream",
            -ranked.score);
        break;
      case Objective::kLowestLoss:
        ranked.rationale =
            util::format("mean loss %.2f%%", summary.mean_loss_pct);
        break;
      case Objective::kMostConsistent:
        ranked.rationale =
            util::format("latency IQR %.2fms", summary.latency_ms->iqr);
        break;
    }
    ranked.summary = std::move(summary);
    selection.ranked.push_back(std::move(ranked));
  }

  std::stable_sort(selection.ranked.begin(), selection.ranked.end(),
                   [](const RankedPath& a, const RankedPath& b) {
                     return a.score < b.score;
                   });
  return selection;
}

std::vector<UserRequest> golden_request_matrix() {
  std::vector<UserRequest> matrix;
  for (const Objective objective :
       {Objective::kLowestLatency, Objective::kHighestBandwidth,
        Objective::kLowestLoss, Objective::kMostConsistent}) {
    UserRequest base;
    base.server_id = 3;
    base.objective = objective;
    matrix.push_back(base);

    UserRequest constrained = base;
    constrained.max_latency_ms = 60.0;
    constrained.max_loss_pct = 2.0;
    matrix.push_back(constrained);

    UserRequest sovereign = base;
    sovereign.exclude_countries = {"US"};
    sovereign.exclude_isds = {18};
    matrix.push_back(sovereign);

    UserRequest strict = base;
    strict.min_bandwidth_mbps = 8.0;
    strict.bw_direction = BwDirection::kUpstream;
    strict.max_jitter_ms = 5.0;
    matrix.push_back(strict);

    UserRequest starved = base;
    starved.min_samples = 7;  // campaign ran 6 iterations
    matrix.push_back(starved);

    UserRequest walled = base;
    walled.allowed_isds = {16, 17};
    walled.exclude_operators = {"SWITCH"};
    matrix.push_back(walled);
  }
  return matrix;
}

TEST_F(StrategyTest, GoldenPaperObjectiveIsBitIdenticalToLegacySelect) {
  const PathSelector selector_ = selector();
  for (const UserRequest& request : golden_request_matrix()) {
    const auto summaries = selector_.summarize(3, request.since_timestamp_ms);
    ASSERT_TRUE(summaries.ok());
    const Selection expected =
        legacy_select(env_->topology, summaries.value(), request);

    const auto actual = selector_.select_with(kPaperObjective, request);
    ASSERT_TRUE(actual.ok()) << request.describe();

    ASSERT_EQ(actual.value().ranked.size(), expected.ranked.size())
        << request.describe();
    for (std::size_t i = 0; i < expected.ranked.size(); ++i) {
      EXPECT_EQ(actual.value().ranked[i].summary.path_id,
                expected.ranked[i].summary.path_id)
          << request.describe();
      // Bit-identical, not approximately equal.
      EXPECT_EQ(actual.value().ranked[i].score, expected.ranked[i].score)
          << request.describe();
      EXPECT_EQ(actual.value().ranked[i].rationale,
                expected.ranked[i].rationale)
          << request.describe();
    }
    ASSERT_EQ(actual.value().rejected.size(), expected.rejected.size())
        << request.describe();
    for (std::size_t i = 0; i < expected.rejected.size(); ++i) {
      EXPECT_EQ(actual.value().rejected[i], expected.rejected[i])
          << request.describe();
    }
  }
}

TEST_F(StrategyTest, FacadeSelectEqualsSelectWithPaperObjective) {
  UserRequest request;
  request.server_id = 3;
  request.objective = Objective::kMostConsistent;
  const PathSelector selector_ = selector();
  const auto via_facade = selector_.select(request);
  const auto via_registry = selector_.select_with(kPaperObjective, request);
  ASSERT_TRUE(via_facade.ok());
  ASSERT_TRUE(via_registry.ok());
  ASSERT_EQ(via_facade.value().ranked.size(),
            via_registry.value().ranked.size());
  for (std::size_t i = 0; i < via_facade.value().ranked.size(); ++i) {
    EXPECT_EQ(via_facade.value().ranked[i].summary.path_id,
              via_registry.value().ranked[i].summary.path_id);
    EXPECT_EQ(via_facade.value().ranked[i].score,
              via_registry.value().ranked[i].score);
  }
  EXPECT_EQ(via_facade.value().rejected, via_registry.value().rejected);
}

// ----------------------------------------------------- other strategies

TEST_F(StrategyTest, LatencyGreedyStatisticKnobChangesTheOrdering) {
  UserRequest request;
  request.server_id = 3;
  const PathSelector selector_ = selector();
  const auto by_median = selector_.select_with(kLatencyGreedy, request);
  util::JsonObject knobs;
  knobs.set("statistic", Value(std::string("whisker_high")));
  const auto by_tail = selector_.select_with(kLatencyGreedy, request, knobs);
  ASSERT_TRUE(by_median.ok());
  ASSERT_TRUE(by_tail.ok());
  ASSERT_FALSE(by_median.value().ranked.empty());
  EXPECT_EQ(by_median.value().ranked.size(), by_tail.value().ranked.size());
  for (std::size_t i = 0; i < by_median.value().ranked.size(); ++i) {
    const auto& box = by_tail.value().ranked[i].summary.latency_ms;
    ASSERT_TRUE(box.has_value());
    EXPECT_EQ(by_tail.value().ranked[i].score, box->whisker_high);
  }
}

TEST_F(StrategyTest, GeoConstrainedRanksByGeodesicDistance) {
  UserRequest request;
  request.server_id = 3;
  const auto selection = selector().select_with(kGeoConstrained, request);
  ASSERT_TRUE(selection.ok());
  ASSERT_FALSE(selection.value().ranked.empty());
  double previous = -1.0;
  for (const RankedPath& ranked : selection.value().ranked) {
    EXPECT_GE(ranked.score, previous);
    previous = ranked.score;
    bool has_km_term = false;
    for (const ScoreTerm& term : ranked.terms) {
      if (term.name == "geodesic_km") has_km_term = true;
    }
    EXPECT_TRUE(has_km_term);
  }
}

TEST_F(StrategyTest, DisjointnessMaxSecondPickMinimizesOverlap) {
  UserRequest request;
  request.server_id = 3;
  const auto selection = selector().select_with(kDisjointnessMax, request);
  ASSERT_TRUE(selection.ok());
  ASSERT_GE(selection.value().ranked.size(), 2u);
  // The interior hops of picks 1 and 2 must overlap no more than any
  // alternative ordering could achieve — on the single-AP testbed, the
  // overlap term is still reported per path.
  for (const RankedPath& ranked : selection.value().ranked) {
    bool has_overlap_term = false;
    for (const ScoreTerm& term : ranked.terms) {
      if (term.name == "overlap_fraction") {
        has_overlap_term = true;
        EXPECT_GE(term.value, 0.0);
        EXPECT_LE(term.value, 1.0);
      }
    }
    EXPECT_TRUE(has_overlap_term);
  }
}

TEST_F(StrategyTest, EveryStrategyEnforcesSovereigntyIdentically) {
  UserRequest request;
  request.server_id = 3;
  request.exclude_countries = {"SG"};
  const PathSelector selector_ = selector();
  for (const std::string& key : StrategyRegistry::global().keys()) {
    const auto selection = selector_.select_with(key, request);
    ASSERT_TRUE(selection.ok()) << key;
    for (const RankedPath& ranked : selection.value().ranked) {
      for (const scion::IsdAsn hop : ranked.summary.hops) {
        EXPECT_NE(hop, scion::scionlab::kSingapore) << key;
      }
    }
  }
}

}  // namespace
}  // namespace upin::select
