// Tests for simnet/faultplan: determinism, episode bounds and rates, and
// the Network integration (injected kUnreachable / kTimeout /
// kBadResponse and flapped links).
#include "simnet/faultplan.hpp"

#include <gtest/gtest.h>

#include "simnet/network.hpp"

namespace upin::simnet {
namespace {

using util::sim_seconds;
using util::SimTime;

TEST(FaultPlan, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_TRUE(plan.server_down_windows(0).empty());
  EXPECT_TRUE(plan.slow_windows(3).empty());
  EXPECT_TRUE(plan.link_flap_windows(0, 1).empty());
  EXPECT_FALSE(plan.server_down(0, sim_seconds(100)));
  EXPECT_FALSE(plan.slow_responder(0, sim_seconds(100)));
  EXPECT_FALSE(plan.link_flapped(0, 1, sim_seconds(100)));
  EXPECT_FALSE(plan.garbled("ping:x", sim_seconds(100)));
}

TEST(FaultPlan, ZeroRateConfigInjectsNothing) {
  FaultPlanConfig config;  // all rates zero
  const FaultPlan plan(42, config);
  EXPECT_FALSE(plan.active());
  EXPECT_TRUE(plan.server_down_windows(7).empty());
}

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultPlanConfig config;
  config.server_down_per_hour = 2.0;
  config.link_flap_per_hour = 3.0;
  config.slow_per_hour = 1.0;
  const FaultPlan plan_a(123, config);
  const FaultPlan plan_b(123, config);
  const auto down_a = plan_a.server_down_windows(4);
  const auto down_b = plan_b.server_down_windows(4);
  ASSERT_EQ(down_a.size(), down_b.size());
  for (std::size_t i = 0; i < down_a.size(); ++i) {
    EXPECT_EQ(down_a[i].start, down_b[i].start);
    EXPECT_EQ(down_a[i].end, down_b[i].end);
  }
  const auto flap_a = plan_a.link_flap_windows(1, 2);
  const auto flap_b = plan_b.link_flap_windows(1, 2);
  ASSERT_EQ(flap_a.size(), flap_b.size());
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlanConfig config;
  config.server_down_per_hour = 4.0;
  const FaultPlan plan_a(1, config);
  const FaultPlan plan_b(2, config);
  const auto down_a = plan_a.server_down_windows(0);
  const auto down_b = plan_b.server_down_windows(0);
  const bool differs =
      down_a.size() != down_b.size() ||
      (!down_a.empty() && down_a.front().start != down_b.front().start);
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, NodesHaveIndependentSchedules) {
  FaultPlanConfig config;
  config.server_down_per_hour = 4.0;
  const FaultPlan plan(99, config);
  const auto down_a = plan.server_down_windows(0);
  const auto down_b = plan.server_down_windows(1);
  const bool differs =
      down_a.size() != down_b.size() ||
      (!down_a.empty() && down_a.front().start != down_b.front().start);
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, WindowsRespectHorizonAndDurations) {
  FaultPlanConfig config;
  config.horizon_s = 3600.0;
  config.server_down_per_hour = 6.0;
  config.server_down_min_s = 30.0;
  config.server_down_max_s = 300.0;
  const FaultPlan plan(7, config);
  const auto windows = plan.server_down_windows(2);
  ASSERT_FALSE(windows.empty());
  SimTime previous_start = SimTime::zero();
  for (const FaultWindow& window : windows) {
    EXPECT_GE(window.start, SimTime::zero());
    EXPECT_LT(window.start, sim_seconds(config.horizon_s));
    EXPECT_GE(window.start, previous_start) << "windows sorted by start";
    const double duration = util::to_seconds(window.end - window.start);
    EXPECT_GE(duration, config.server_down_min_s);
    EXPECT_LE(duration, config.server_down_max_s);
    previous_start = window.start;
  }
}

TEST(FaultPlan, EpisodeRateRoughlyMatchesConfig) {
  FaultPlanConfig config;
  config.horizon_s = 24.0 * 3600.0;
  config.server_down_per_hour = 2.0;  // expect ~48 episodes over 24 h
  config.server_down_min_s = 5.0;
  config.server_down_max_s = 10.0;
  const FaultPlan plan(11, config);
  double total = 0.0;
  const int nodes = 8;
  for (int node = 0; node < nodes; ++node) {
    total +=
        static_cast<double>(plan.server_down_windows(
                                    static_cast<std::uint32_t>(node))
                                .size());
  }
  const double mean = total / nodes;
  EXPECT_GT(mean, 24.0);
  EXPECT_LT(mean, 96.0);
}

TEST(FaultPlan, QueriesMatchWindowEdges) {
  FaultPlanConfig config;
  config.server_down_per_hour = 6.0;
  const FaultPlan plan(5, config);
  const auto windows = plan.server_down_windows(1);
  ASSERT_FALSE(windows.empty());
  const FaultWindow& window = windows.front();
  const SimTime middle = window.start + (window.end - window.start) / 2;
  EXPECT_TRUE(plan.server_down(1, middle));
  EXPECT_TRUE(plan.server_down(1, window.start)) << "start is inclusive";
  EXPECT_FALSE(plan.server_down(1, window.end)) << "end is exclusive";
  if (window.start > SimTime::zero()) {
    EXPECT_FALSE(plan.server_down(1, window.start - SimTime(1)));
  }
}

TEST(FaultPlan, GarbledDrawIsDeterministicPerLabelAndTime) {
  FaultPlanConfig config;
  config.garble_prob = 0.5;
  const FaultPlan plan(21, config);
  const bool first = plan.garbled("ping:p1", sim_seconds(10));
  EXPECT_EQ(plan.garbled("ping:p1", sim_seconds(10)), first);
  // Across many (label, time) draws both outcomes appear.
  int garbled_count = 0;
  const int draws = 200;
  for (int i = 0; i < draws; ++i) {
    if (plan.garbled("ping:p1", sim_seconds(i))) ++garbled_count;
  }
  EXPECT_GT(garbled_count, draws / 5);
  EXPECT_LT(garbled_count, draws * 4 / 5);
}

TEST(FaultPlan, GarbledExtremes) {
  FaultPlanConfig always;
  always.garble_prob = 1.0;
  const FaultPlan plan_always(3, always);
  EXPECT_TRUE(plan_always.garbled("bw:x", sim_seconds(1)));

  FaultPlanConfig never;
  never.garble_prob = 0.0;
  never.slow_per_hour = 1.0;  // keep the plan active
  const FaultPlan plan_never(3, never);
  EXPECT_FALSE(plan_never.garbled("bw:x", sim_seconds(1)));
}

// ---------------------------------------------------------------------------
// Network integration: injected faults surface as typed operation errors.
// ---------------------------------------------------------------------------

struct FaultyLine {
  Network net;
  NodeId a = 0, b = 0, c = 0;

  explicit FaultyLine(const FaultPlanConfig& faults, std::uint64_t seed = 42)
      : net(seed, [&] {
          NetworkConfig config;
          config.faults = faults;
          return config;
        }()) {
    a = net.add_node({"A", {52.37, 4.90}, 0.05, 0.1});
    b = net.add_node({"B", {50.11, 8.68}, 0.05, 0.1});
    c = net.add_node({"C", {53.35, -6.26}, 0.05, 0.1});
    EXPECT_TRUE(net.add_duplex(a, b, 100.0, 100.0, 0.2).ok());
    EXPECT_TRUE(net.add_duplex(b, c, 100.0, 100.0, 0.2).ok());
  }

  [[nodiscard]] std::vector<NodeId> route() const { return {a, b, c}; }
};

TEST(NetworkFaults, ServerDownWindowMakesPingUnreachable) {
  FaultPlanConfig faults;
  faults.server_down_per_hour = 6.0;
  FaultyLine fix(faults);
  const auto windows = fix.net.faults().server_down_windows(fix.c);
  ASSERT_FALSE(windows.empty());
  const SimTime inside =
      windows.front().start + (windows.front().end - windows.front().start) / 2;
  const auto down = fix.net.ping(fix.route(), {}, inside);
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.error().code, util::ErrorCode::kUnreachable);
  // Well past the horizon there are no episodes: the ping succeeds.
  const auto up = fix.net.ping(
      fix.route(), {},
      sim_seconds(fix.net.faults().config().horizon_s + 1000.0));
  EXPECT_TRUE(up.ok());
}

TEST(NetworkFaults, SlowResponderWindowTimesOut) {
  FaultPlanConfig faults;
  faults.slow_per_hour = 6.0;
  FaultyLine fix(faults);
  const auto windows = fix.net.faults().slow_windows(fix.c);
  ASSERT_FALSE(windows.empty());
  const SimTime inside =
      windows.front().start + (windows.front().end - windows.front().start) / 2;
  const auto slow = fix.net.ping(fix.route(), {}, inside);
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.error().code, util::ErrorCode::kTimeout);
}

TEST(NetworkFaults, GarbledResponseIsBadResponse) {
  FaultPlanConfig faults;
  faults.garble_prob = 1.0;
  FaultyLine fix(faults);
  const auto garbled = fix.net.ping(fix.route(), {}, sim_seconds(10));
  ASSERT_FALSE(garbled.ok());
  EXPECT_EQ(garbled.error().code, util::ErrorCode::kBadResponse);
  BwtestOptions bw;
  bw.packet_bytes = 1000.0;
  const auto bw_garbled = fix.net.bwtest(fix.route(), bw, sim_seconds(10));
  ASSERT_FALSE(bw_garbled.ok());
  EXPECT_EQ(bw_garbled.error().code, util::ErrorCode::kBadResponse);
}

TEST(NetworkFaults, FlappedLinkDropsEveryFrame) {
  FaultPlanConfig faults;
  faults.link_flap_per_hour = 6.0;
  FaultyLine fix(faults);
  const auto windows = fix.net.faults().link_flap_windows(fix.a, fix.b);
  ASSERT_FALSE(windows.empty());
  const SimTime inside =
      windows.front().start + (windows.front().end - windows.front().start) / 2;
  EXPECT_DOUBLE_EQ(fix.net.frame_loss(fix.a, fix.b, inside), 1.0);
}

TEST(NetworkFaults, InertPlanLeavesBaseModelUnchanged) {
  FaultPlanConfig no_faults;
  FaultyLine faulty(no_faults, 42);
  Network plain(42);
  const NodeId a = plain.add_node({"A", {52.37, 4.90}, 0.05, 0.1});
  const NodeId b = plain.add_node({"B", {50.11, 8.68}, 0.05, 0.1});
  const NodeId c = plain.add_node({"C", {53.35, -6.26}, 0.05, 0.1});
  ASSERT_TRUE(plain.add_duplex(a, b, 100.0, 100.0, 0.2).ok());
  ASSERT_TRUE(plain.add_duplex(b, c, 100.0, 100.0, 0.2).ok());
  const auto with_plan = faulty.net.ping(faulty.route(), {}, sim_seconds(50));
  const auto without = plain.ping({a, b, c}, {}, sim_seconds(50));
  ASSERT_TRUE(with_plan.ok());
  ASSERT_TRUE(without.ok());
  ASSERT_EQ(with_plan.value().rtt_ms.size(), without.value().rtt_ms.size());
  for (std::size_t i = 0; i < with_plan.value().rtt_ms.size(); ++i) {
    EXPECT_EQ(with_plan.value().rtt_ms[i], without.value().rtt_ms[i]);
  }
}

}  // namespace
}  // namespace upin::simnet
