// Tests for simnet/geo.
#include "simnet/geo.hpp"

#include <gtest/gtest.h>

namespace upin::simnet {
namespace {

constexpr GeoPoint kAmsterdam{52.37, 4.90};
constexpr GeoPoint kZurich{47.38, 8.54};
constexpr GeoPoint kSingapore{1.35, 103.82};
constexpr GeoPoint kDublin{53.35, -6.26};

TEST(Haversine, ZeroDistanceToSelf) {
  EXPECT_DOUBLE_EQ(haversine_km(kAmsterdam, kAmsterdam), 0.0);
}

TEST(Haversine, IsSymmetric) {
  EXPECT_DOUBLE_EQ(haversine_km(kAmsterdam, kZurich),
                   haversine_km(kZurich, kAmsterdam));
}

TEST(Haversine, AmsterdamZurichAbout600Km) {
  EXPECT_NEAR(haversine_km(kAmsterdam, kZurich), 615.0, 40.0);
}

TEST(Haversine, AmsterdamSingaporeAbout10500Km) {
  EXPECT_NEAR(haversine_km(kAmsterdam, kSingapore), 10500.0, 300.0);
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 50.0);
}

TEST(Haversine, CrossesDateLine) {
  const GeoPoint tokyo{35.68, 139.69};
  const GeoPoint seattle{47.61, -122.33};
  EXPECT_NEAR(haversine_km(tokyo, seattle), 7700.0, 300.0);
}

TEST(PropagationDelay, ZeroForZeroDistance) {
  EXPECT_EQ(propagation_delay(0.0), util::SimDuration::zero());
}

TEST(PropagationDelay, ScalesLinearly) {
  const double one = util::to_millis(propagation_delay(1000.0));
  const double two = util::to_millis(propagation_delay(2000.0));
  // SimDuration has nanosecond granularity; allow that much slack.
  EXPECT_NEAR(two, 2.0 * one, 1e-5);
}

TEST(PropagationDelay, RealisticMagnitude) {
  // ~1000 km of fibre with route stretch: ~6 ms one-way.
  EXPECT_NEAR(util::to_millis(propagation_delay(1000.0)), 6.0, 1.0);
}

TEST(PropagationDelay, TransoceanicMagnitude) {
  // Amsterdam -> Singapore one-way should be roughly 60-70 ms.
  const double ms =
      util::to_millis(propagation_delay(haversine_km(kAmsterdam, kSingapore)));
  EXPECT_GT(ms, 55.0);
  EXPECT_LT(ms, 75.0);
}

TEST(PropagationDelay, DublinFrankfurtIsShort) {
  const GeoPoint frankfurt{50.11, 8.68};
  const double ms =
      util::to_millis(propagation_delay(haversine_km(kDublin, frankfurt)));
  EXPECT_LT(ms, 10.0);
}

}  // namespace
}  // namespace upin::simnet
