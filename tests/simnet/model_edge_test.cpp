// Additional simnet model tests: diurnal variation, micro-congestion
// statistics, asymmetric links, trace edge cases.
#include <gtest/gtest.h>

#include "simnet/network.hpp"

namespace upin::simnet {
namespace {

using util::sim_seconds;
using util::SimTime;

struct Pair {
  Network net{7};
  NodeId a, b;
  Pair(double ab = 100.0, double ba = 100.0, double util_base = 0.3) {
    a = net.add_node({"A", {52.37, 4.90}, 0.05, 0.1});
    b = net.add_node({"B", {50.11, 8.68}, 0.05, 0.1});
    EXPECT_TRUE(net.add_duplex(a, b, ab, ba, util_base).ok());
  }
};

TEST(Utilization, DiurnalWaveMovesTheMean) {
  Pair fix;
  // Sample utilization across a full period: it must actually vary.
  double lo = 1.0, hi = 0.0;
  for (double t = 0; t < 3600; t += 60) {
    const double u = fix.net.utilization(fix.a, fix.b, sim_seconds(t));
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(hi - lo, 0.1) << "the diurnal wave must be visible";
}

TEST(Utilization, DirectionsAreIndependent) {
  Pair fix;
  // Forward and reverse links carry independent phases/noise.
  bool any_different = false;
  for (double t = 0; t < 3600; t += 300) {
    if (std::abs(fix.net.utilization(fix.a, fix.b, sim_seconds(t)) -
                 fix.net.utilization(fix.b, fix.a, sim_seconds(t))) > 1e-6) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FrameLoss, MicroCongestionIsOccasionalAndBounded) {
  Pair fix;
  std::size_t congested_buckets = 0;
  const std::size_t total_buckets = 2000;
  for (std::size_t i = 0; i < total_buckets; ++i) {
    const double p =
        fix.net.frame_loss(fix.a, fix.b, sim_seconds(10.0 * static_cast<double>(i)));
    if (p > 0.01) ++congested_buckets;
    EXPECT_LE(p, 0.25) << "micro-congestion loss stays moderate";
  }
  const double fraction =
      static_cast<double>(congested_buckets) / total_buckets;
  EXPECT_GT(fraction, 0.001);
  EXPECT_LT(fraction, 0.05) << "congested buckets are the exception";
}

TEST(Bwtest, AsymmetricLinkGivesAsymmetricThroughput) {
  Pair fix(/*ab=*/40.0, /*ba=*/14.0, /*util=*/0.15);
  BwtestOptions options;
  options.packet_bytes = 1452.0;
  options.target_mbps = 150.0;
  const auto down = fix.net.bwtest({fix.a, fix.b}, options, SimTime::zero());
  const auto up = fix.net.bwtest({fix.b, fix.a}, options, SimTime::zero());
  ASSERT_TRUE(down.ok());
  ASSERT_TRUE(up.ok());
  EXPECT_GT(down.value().achieved_mbps, up.value().achieved_mbps);
  EXPECT_LT(up.value().bottleneck_available_mbps,
            down.value().bottleneck_available_mbps);
}

TEST(Bwtest, LongerRouteUsesNarrowestLink) {
  Network net(7);
  const NodeId a = net.add_node({"A", {52, 4}});
  const NodeId b = net.add_node({"B", {50, 8}});
  const NodeId c = net.add_node({"C", {48, 2}});
  ASSERT_TRUE(net.add_duplex(a, b, 500, 500, 0.1).ok());
  ASSERT_TRUE(net.add_duplex(b, c, 25, 25, 0.1).ok());
  BwtestOptions options;
  options.packet_bytes = 1452.0;
  options.target_mbps = 150.0;
  const auto result = net.bwtest({a, b, c}, options, SimTime::zero());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().bottleneck_available_mbps, 25.0);
  EXPECT_LT(result.value().achieved_mbps, 25.0);
}

TEST(Bwtest, TinyPacketsAreLegalDownTo4Bytes) {
  Pair fix;
  BwtestOptions options;
  options.packet_bytes = 4.0;
  options.target_mbps = 1.0;
  const auto result = fix.net.bwtest({fix.a, fix.b}, options, SimTime::zero());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().achieved_mbps, 0.0);
}

TEST(Bwtest, ZeroAvailabilityYieldsZeroThroughput) {
  Pair fix(100.0, 100.0, /*util_base=*/0.97);  // clamped to max utilization
  BwtestOptions options;
  options.packet_bytes = 1452.0;
  options.target_mbps = 150.0;
  const auto result = fix.net.bwtest({fix.a, fix.b}, options, SimTime::zero());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().achieved_mbps, 10.0);
}

TEST(Traceroute, SilentHopsUnderOutage) {
  Pair fix;
  const NodeId c = fix.net.add_node({"C", {48.86, 2.35}, 0.05, 0.1});
  ASSERT_TRUE(fix.net.add_duplex(fix.b, c, 100, 100, 0.2).ok());
  fix.net.add_outage({c, SimTime::zero(), sim_seconds(1e6), 1.0});
  const auto trace = fix.net.traceroute({fix.a, fix.b, c}, sim_seconds(1));
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.value().hops.size(), 2u);
  EXPECT_TRUE(trace.value().hops[0].rtt_ms.has_value()) << "B still answers";
  EXPECT_FALSE(trace.value().hops[1].rtt_ms.has_value()) << "C is dark";
}

TEST(Ping, IntervalPlacesPacketsInDifferentCongestionBuckets) {
  // With a 10 s interval, 30 probes span 300 s: some probes land in
  // congested buckets while others do not, so per-probe RTT/loss varies
  // more than within one bucket.
  Pair fix;
  PingOptions slow;
  slow.count = 30;
  slow.interval = sim_seconds(10.0);
  const auto spread_stats = fix.net.ping({fix.a, fix.b}, slow, SimTime::zero());
  ASSERT_TRUE(spread_stats.ok());
  ASSERT_TRUE(spread_stats.value().stddev_ms().has_value());
  EXPECT_GT(*spread_stats.value().stddev_ms(), 0.0);
}

TEST(Bwtest, ServerErrorFaultClass) {
  NetworkConfig always_fails;
  always_fails.server_error_prob = 1.0;
  Network bad(7, always_fails);
  const NodeId a = bad.add_node({"A", {52, 4}});
  const NodeId b = bad.add_node({"B", {50, 8}});
  ASSERT_TRUE(bad.add_duplex(a, b, 100, 100).ok());
  BwtestOptions options;
  options.packet_bytes = 1000.0;
  const auto failed = bad.bwtest({a, b}, options, SimTime::zero());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, util::ErrorCode::kBadResponse);

  NetworkConfig never_fails;
  never_fails.server_error_prob = 0.0;
  Network good(7, never_fails);
  const NodeId c = good.add_node({"A", {52, 4}});
  const NodeId d = good.add_node({"B", {50, 8}});
  ASSERT_TRUE(good.add_duplex(c, d, 100, 100).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(good.bwtest({c, d}, options,
                            sim_seconds(static_cast<double>(i) * 7.0))
                    .ok());
  }
}

TEST(NetworkConfig, AblationKnobsArePlumbed) {
  NetworkConfig config;
  config.micro_congestion_prob = 0.0;  // disable micro-congestion entirely
  config.sender_pps_cap = 1e9;
  Network net(7, config);
  const NodeId a = net.add_node({"A", {52, 4}});
  const NodeId b = net.add_node({"B", {50, 8}});
  LinkSpec link;
  link.from = a;
  link.to = b;
  link.base_loss = 0.0;
  link.util_base = 0.1;
  link.util_amplitude = 0.0;
  ASSERT_TRUE(net.add_link(link).ok());
  // No micro-congestion, no base loss, utilization < threshold: loss 0.
  for (double t = 0; t < 1000; t += 50) {
    EXPECT_DOUBLE_EQ(net.frame_loss(a, b, sim_seconds(t)), 0.0);
  }
  // And the pps cap no longer limits small packets.
  LinkSpec reverse = link;
  reverse.from = b;
  reverse.to = a;
  ASSERT_TRUE(net.add_link(reverse).ok());
  BwtestOptions options;
  options.packet_bytes = 64.0;
  options.target_mbps = 150.0;
  const auto result = net.bwtest({a, b}, options, SimTime::zero());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().attempted_mbps, 150.0, 0.1);
}

}  // namespace
}  // namespace upin::simnet
