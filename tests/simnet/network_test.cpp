// Tests for simnet/network: construction, ping/traceroute/bwtest models,
// determinism, outages and the saturation mechanics behind Figs 7/8.
#include "simnet/network.hpp"

#include <gtest/gtest.h>

namespace upin::simnet {
namespace {

using util::sim_seconds;
using util::SimTime;

/// Three nodes in a line: A(Amsterdam) - B(Frankfurt) - C(Dublin).
struct LineFixture {
  Network net{42};
  NodeId a, b, c;

  explicit LineFixture(double ab_capacity = 100.0, double bc_capacity = 100.0,
                       double util_base = 0.2) {
    a = net.add_node({"A", {52.37, 4.90}, 0.05, 0.1});
    b = net.add_node({"B", {50.11, 8.68}, 0.05, 0.1});
    c = net.add_node({"C", {53.35, -6.26}, 0.05, 0.1});
    EXPECT_TRUE(net.add_duplex(a, b, ab_capacity, ab_capacity, util_base).ok());
    EXPECT_TRUE(net.add_duplex(b, c, bc_capacity, bc_capacity, util_base).ok());
  }

  [[nodiscard]] std::vector<NodeId> route() const { return {a, b, c}; }
};

TEST(NetworkBuild, NodesAndLinks) {
  LineFixture fix;
  EXPECT_EQ(fix.net.node_count(), 3u);
  EXPECT_EQ(fix.net.link_count(), 4u);  // two duplex pairs
  EXPECT_EQ(fix.net.find_node("B"), fix.b);
  EXPECT_FALSE(fix.net.find_node("missing").has_value());
  EXPECT_NE(fix.net.find_link(fix.a, fix.b), nullptr);
  EXPECT_EQ(fix.net.find_link(fix.a, fix.c), nullptr);
}

TEST(NetworkBuild, RejectsBadLinks) {
  Network net(1);
  const NodeId a = net.add_node({"A", {0, 0}});
  LinkSpec to_unknown;
  to_unknown.from = a;
  to_unknown.to = 99;
  EXPECT_EQ(net.add_link(to_unknown).error().code,
            util::ErrorCode::kInvalidArgument);
  LinkSpec self;
  self.from = a;
  self.to = a;
  EXPECT_EQ(net.add_link(self).error().code,
            util::ErrorCode::kInvalidArgument);
  const NodeId b = net.add_node({"B", {1, 1}});
  LinkSpec good;
  good.from = a;
  good.to = b;
  ASSERT_TRUE(net.add_link(good).ok());
  EXPECT_EQ(net.add_link(good).error().code, util::ErrorCode::kConflict);
}

TEST(NetworkBuild, PropagationFromGeographyOrOverride) {
  LineFixture fix;
  const double ab_ms = util::to_millis(fix.net.link_propagation(fix.a, fix.b));
  EXPECT_NEAR(ab_ms, 2.2, 1.5);  // Amsterdam-Frankfurt ~360 km

  Network net(1);
  const NodeId x = net.add_node({"X", {0, 0}});
  const NodeId y = net.add_node({"Y", {10, 10}});
  LinkSpec pinned;
  pinned.from = x;
  pinned.to = y;
  pinned.propagation = util::sim_millis(7.0);
  ASSERT_TRUE(net.add_link(pinned).ok());
  EXPECT_DOUBLE_EQ(util::to_millis(net.link_propagation(x, y)), 7.0);
}

TEST(Ping, RequiresValidRoute) {
  LineFixture fix;
  EXPECT_FALSE(fix.net.ping({fix.a}, {}, SimTime::zero()).ok());
  EXPECT_FALSE(fix.net.ping({fix.a, fix.c}, {}, SimTime::zero()).ok());
}

TEST(Ping, DeliversExpectedCount) {
  LineFixture fix;
  PingOptions options;
  options.count = 30;
  const auto stats = fix.net.ping(fix.route(), options, SimTime::zero());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().sent(), 30u);
  EXPECT_LT(stats.value().loss_pct(), 50.0);
  ASSERT_TRUE(stats.value().avg_ms().has_value());
}

TEST(Ping, RttReflectsGeography) {
  LineFixture fix;
  const auto stats = fix.net.ping(fix.route(), {}, SimTime::zero());
  ASSERT_TRUE(stats.ok());
  // one-way ~ AMS->FRA (2.2ms) + FRA->DUB (9ms) => RTT >= ~22ms.
  EXPECT_GT(*stats.value().avg_ms(), 15.0);
  EXPECT_LT(*stats.value().avg_ms(), 60.0);
}

TEST(Ping, DeterministicForSameSeedAndTime) {
  LineFixture fix1, fix2;
  const auto s1 = fix1.net.ping(fix1.route(), {}, sim_seconds(100));
  const auto s2 = fix2.net.ping(fix2.route(), {}, sim_seconds(100));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1.value().rtt_ms.size(), s2.value().rtt_ms.size());
  for (std::size_t i = 0; i < s1.value().rtt_ms.size(); ++i) {
    EXPECT_EQ(s1.value().rtt_ms[i].has_value(),
              s2.value().rtt_ms[i].has_value());
    if (s1.value().rtt_ms[i].has_value()) {
      EXPECT_DOUBLE_EQ(*s1.value().rtt_ms[i], *s2.value().rtt_ms[i]);
    }
  }
}

TEST(Ping, DifferentTimesGiveDifferentSamples) {
  LineFixture fix;
  const auto s1 = fix.net.ping(fix.route(), {}, sim_seconds(0));
  const auto s2 = fix.net.ping(fix.route(), {}, sim_seconds(1000));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(s1.value().avg_ms().has_value());
  ASSERT_TRUE(s2.value().avg_ms().has_value());
  EXPECT_NE(*s1.value().avg_ms(), *s2.value().avg_ms());
}

TEST(Ping, OutageDropsEverything) {
  LineFixture fix;
  fix.net.add_outage({fix.b, sim_seconds(0), sim_seconds(100), 1.0});
  const auto stats = fix.net.ping(fix.route(), {}, sim_seconds(10));
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats.value().loss_pct(), 100.0);
  EXPECT_FALSE(stats.value().avg_ms().has_value());
  EXPECT_FALSE(stats.value().min_ms().has_value());
  EXPECT_FALSE(stats.value().stddev_ms().has_value());
}

TEST(Ping, OutageWindowBoundariesRespected) {
  LineFixture fix;
  fix.net.add_outage({fix.b, sim_seconds(50), sim_seconds(60), 1.0});
  const auto before = fix.net.ping(fix.route(), {}, sim_seconds(10));
  const auto after = fix.net.ping(fix.route(), {}, sim_seconds(70));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_LT(before.value().loss_pct(), 50.0);
  EXPECT_LT(after.value().loss_pct(), 50.0);
}

TEST(Ping, PartialOutageLosesSome) {
  LineFixture fix;
  fix.net.add_outage({fix.b, sim_seconds(0), sim_seconds(1000), 0.5});
  PingOptions options;
  options.count = 200;
  const auto stats = fix.net.ping(fix.route(), options, sim_seconds(10));
  ASSERT_TRUE(stats.ok());
  // Forward and reverse both cross the node: ~75% packet loss.
  EXPECT_GT(stats.value().loss_pct(), 50.0);
  EXPECT_LT(stats.value().loss_pct(), 95.0);
}

TEST(Traceroute, PerHopRttsAreOrdered) {
  LineFixture fix;
  const auto trace = fix.net.traceroute(fix.route(), SimTime::zero());
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.value().hops.size(), 2u);
  ASSERT_TRUE(trace.value().hops[0].rtt_ms.has_value());
  ASSERT_TRUE(trace.value().hops[1].rtt_ms.has_value());
  EXPECT_LT(*trace.value().hops[0].rtt_ms, *trace.value().hops[1].rtt_ms);
  EXPECT_EQ(trace.value().hops[1].node, fix.c);
}

TEST(Bwtest, ValidatesArguments) {
  LineFixture fix;
  BwtestOptions options;
  options.packet_bytes = 2.0;  // < 4 bytes
  EXPECT_FALSE(fix.net.bwtest(fix.route(), options, SimTime::zero()).ok());
  options.packet_bytes = 1000.0;
  options.duration_s = 11.0;  // > 10 s cap (paper §3.3)
  EXPECT_FALSE(fix.net.bwtest(fix.route(), options, SimTime::zero()).ok());
}

TEST(Bwtest, UnderloadAchievesRoughlyTarget) {
  LineFixture fix(100.0, 100.0, 0.1);
  BwtestOptions options;
  options.packet_bytes = 1000.0;
  options.target_mbps = 12.0;
  const auto result = fix.net.bwtest(fix.route(), options, SimTime::zero());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().achieved_mbps, 12.0, 1.5);
  EXPECT_LE(result.value().achieved_mbps, result.value().attempted_mbps);
}

TEST(Bwtest, SaturationCapsThroughput) {
  LineFixture fix(30.0, 100.0, 0.2);
  BwtestOptions options;
  options.packet_bytes = 1452.0;
  options.target_mbps = 150.0;
  const auto result = fix.net.bwtest(fix.route(), options, SimTime::zero());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().achieved_mbps, 30.0);
  EXPECT_GT(result.value().packets_lost, 0u);
}

TEST(Bwtest, FragmentationDoublesFrames) {
  LineFixture fix;
  BwtestOptions small;
  small.packet_bytes = 64.0;
  BwtestOptions large;
  large.packet_bytes = 1452.0;
  EXPECT_EQ(fix.net.bwtest(fix.route(), small, SimTime::zero())
                .value()
                .frames_per_packet,
            1);
  EXPECT_EQ(fix.net.bwtest(fix.route(), large, SimTime::zero())
                .value()
                .frames_per_packet,
            2);
}

TEST(Bwtest, FragmentationDisabledSingleFrame) {
  NetworkConfig config;
  config.fragmentation_enabled = false;
  Network net(42, config);
  const NodeId a = net.add_node({"A", {52.37, 4.90}});
  const NodeId b = net.add_node({"B", {50.11, 8.68}});
  ASSERT_TRUE(net.add_duplex(a, b, 100, 100).ok());
  BwtestOptions options;
  options.packet_bytes = 1452.0;
  EXPECT_EQ(net.bwtest({a, b}, options, SimTime::zero()).value().frames_per_packet,
            1);
}

TEST(Bwtest, SenderPpsCapLimitsSmallPackets) {
  LineFixture fix(1000.0, 1000.0, 0.05);
  BwtestOptions options;
  options.packet_bytes = 64.0;
  options.target_mbps = 150.0;
  const auto result = fix.net.bwtest(fix.route(), options, SimTime::zero());
  ASSERT_TRUE(result.ok());
  // 60k pps cap * 64 B * 8 = 30.7 Mbps attempted, regardless of target.
  EXPECT_NEAR(result.value().attempted_mbps, 30.7, 0.5);
}

TEST(Bwtest, InversionUnderSaturation) {
  // The Fig 7 / Fig 8 mechanics in isolation: a 35 Mbps bottleneck.
  LineFixture fix(35.0, 200.0, 0.1);
  BwtestOptions small;
  small.packet_bytes = 64.0;
  BwtestOptions large;
  large.packet_bytes = 1452.0;

  small.target_mbps = large.target_mbps = 12.0;
  const double small_12 =
      fix.net.bwtest(fix.route(), small, SimTime::zero()).value().achieved_mbps;
  const double large_12 =
      fix.net.bwtest(fix.route(), large, SimTime::zero()).value().achieved_mbps;
  EXPECT_GT(large_12, small_12) << "Fig 7 shape: MTU wins under light load";

  small.target_mbps = large.target_mbps = 150.0;
  const double small_150 =
      fix.net.bwtest(fix.route(), small, SimTime::zero()).value().achieved_mbps;
  const double large_150 =
      fix.net.bwtest(fix.route(), large, SimTime::zero()).value().achieved_mbps;
  EXPECT_GT(small_150, large_150) << "Fig 8 shape: inversion under saturation";
}

TEST(Bwtest, OutageKillsThroughput) {
  LineFixture fix;
  fix.net.add_outage({fix.b, sim_seconds(0), sim_seconds(100), 1.0});
  BwtestOptions options;
  options.packet_bytes = 1000.0;
  const auto result = fix.net.bwtest(fix.route(), options, sim_seconds(10));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().achieved_mbps, 0.0);
}

TEST(Utilization, StaysInBounds) {
  LineFixture fix;
  for (double t = 0; t < 7200; t += 137) {
    const double u = fix.net.utilization(fix.a, fix.b, sim_seconds(t));
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 0.97);
  }
}

TEST(Utilization, StableWithinMinuteBucket) {
  LineFixture fix;
  EXPECT_DOUBLE_EQ(fix.net.utilization(fix.a, fix.b, sim_seconds(30)),
                   fix.net.utilization(fix.a, fix.b, sim_seconds(30)));
}

TEST(FrameLoss, WithinProbabilityBounds) {
  LineFixture fix;
  for (double t = 0; t < 3600; t += 97) {
    const double p = fix.net.frame_loss(fix.a, fix.b, sim_seconds(t));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FrameLoss, UnknownLinkIsTotalLoss) {
  LineFixture fix;
  EXPECT_DOUBLE_EQ(fix.net.frame_loss(fix.a, fix.c, SimTime::zero()), 1.0);
}

TEST(OutageDrop, MaxOfOverlappingWindows) {
  LineFixture fix;
  fix.net.add_outage({fix.b, sim_seconds(0), sim_seconds(100), 0.3});
  fix.net.add_outage({fix.b, sim_seconds(50), sim_seconds(150), 0.8});
  EXPECT_DOUBLE_EQ(fix.net.outage_drop(fix.b, sim_seconds(75)), 0.8);
  EXPECT_DOUBLE_EQ(fix.net.outage_drop(fix.b, sim_seconds(10)), 0.3);
  EXPECT_DOUBLE_EQ(fix.net.outage_drop(fix.b, sim_seconds(200)), 0.0);
  EXPECT_DOUBLE_EQ(fix.net.outage_drop(fix.a, sim_seconds(75)), 0.0);
}

TEST(PingStats, Accessors) {
  PingStats stats;
  stats.rtt_ms = {10.0, std::nullopt, 14.0, 12.0};
  EXPECT_EQ(stats.sent(), 4u);
  EXPECT_EQ(stats.lost(), 1u);
  EXPECT_DOUBLE_EQ(stats.loss_pct(), 25.0);
  EXPECT_DOUBLE_EQ(*stats.avg_ms(), 12.0);
  EXPECT_DOUBLE_EQ(*stats.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(*stats.max_ms(), 14.0);
  EXPECT_NEAR(*stats.stddev_ms(), 2.0, 1e-9);
}

TEST(PingStats, EmptyIsWellDefined) {
  const PingStats stats;
  EXPECT_EQ(stats.sent(), 0u);
  EXPECT_DOUBLE_EQ(stats.loss_pct(), 0.0);
  EXPECT_FALSE(stats.avg_ms().has_value());
}

TEST(Multibwtest, EmptyFlowListIsInvalid) {
  LineFixture fix;
  const auto outcome = fix.net.multibwtest({}, SimTime::zero());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, util::ErrorCode::kInvalidArgument);
}

TEST(Multibwtest, LoneFlowReproducesBwtestBitIdentically) {
  LineFixture fix;
  BwtestOptions options;
  options.packet_bytes = 1000.0;
  options.target_mbps = 12.0;
  const auto solo = fix.net.bwtest(fix.route(), options, SimTime::zero());
  ASSERT_TRUE(solo.ok());
  const auto multi =
      fix.net.multibwtest({FlowSpec{fix.route(), options}}, SimTime::zero());
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi.value().flows.size(), 1u);
  ASSERT_TRUE(multi.value().flows[0].ok);
  const BwtestResult& a = solo.value();
  const BwtestResult& b = multi.value().flows[0].result;
  EXPECT_EQ(a.attempted_mbps, b.attempted_mbps);
  EXPECT_EQ(a.achieved_mbps, b.achieved_mbps);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_TRUE(multi.value().shared_bottlenecks.empty());
}

TEST(Multibwtest, ConcurrentFlowsContendOnSharedLinks) {
  // A 30 Mbps line cannot carry two 20 Mbps flows: together they achieve
  // less than twice what either achieves alone.
  LineFixture fix(30.0, 30.0, 0.1);
  BwtestOptions options;
  options.packet_bytes = 1000.0;
  options.target_mbps = 20.0;
  const auto solo = fix.net.bwtest(fix.route(), options, SimTime::zero());
  ASSERT_TRUE(solo.ok());
  const auto multi = fix.net.multibwtest(
      {FlowSpec{fix.route(), options}, FlowSpec{fix.route(), options}},
      SimTime::zero());
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi.value().flows.size(), 2u);
  double combined = 0.0;
  for (const MultibwtestOutcome::Flow& flow : multi.value().flows) {
    ASSERT_TRUE(flow.ok);
    EXPECT_LT(flow.result.achieved_mbps, solo.value().achieved_mbps);
    combined += flow.result.achieved_mbps;
  }
  EXPECT_LT(combined, 2.0 * solo.value().achieved_mbps);
  EXPECT_LE(combined, 30.0);
}

TEST(Multibwtest, ReportsSharedBottleneckLinks) {
  LineFixture fix(30.0, 30.0, 0.1);
  BwtestOptions options;
  options.packet_bytes = 1000.0;
  options.target_mbps = 20.0;
  // Both flows cross A->B; only one continues to C.
  const auto multi = fix.net.multibwtest(
      {FlowSpec{{fix.a, fix.b}, options}, FlowSpec{fix.route(), options}},
      SimTime::zero());
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi.value().shared_bottlenecks.size(), 1u);
  const SharedBottleneck& shared = multi.value().shared_bottlenecks.front();
  EXPECT_EQ(shared.from, fix.a);
  EXPECT_EQ(shared.to, fix.b);
  EXPECT_EQ(shared.flows, (std::vector<std::size_t>{0, 1}));
  EXPECT_GT(shared.offered_wire_mbps, 0.0);
  EXPECT_GT(shared.available_mbps, 0.0);
}

}  // namespace
}  // namespace upin::simnet
