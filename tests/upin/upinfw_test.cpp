// Tests for the UPIN framework layer (paper §2.1, §7): Domain Explorer,
// Path Controller, Path Tracer, Path Verifier, Recommender.
#include <gtest/gtest.h>

#include "measure/testsuite.hpp"
#include "upin/controller.hpp"
#include "upin/explorer.hpp"
#include "upin/recommend.hpp"
#include "upin/tracer.hpp"
#include "upin/verifier.hpp"

namespace upin::upinfw {
namespace {

using scion::scionlab::kIreland;
using scion::scionlab::kOhio;
using scion::scionlab::kSingapore;

/// Shared campaign fixture: Ireland measured 8 times, explorer refreshed.
class UpinFwTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new scion::ScionlabEnv(scion::scionlab_topology());
    host_ = new apps::ScionHost(*env_, 42, env_->user_as, "10.0.8.1");
    db_ = new docdb::Database();
    measure::TestSuiteConfig config;
    config.iterations = 8;
    config.server_ids = {{3}};
    measure::TestSuite suite(*host_, *db_, config);
    ASSERT_TRUE(suite.run().ok());
    selector_ = new select::PathSelector(*db_, env_->topology);
  }
  static void TearDownTestSuite() {
    delete selector_;
    delete db_;
    delete host_;
    delete env_;
    selector_ = nullptr;
    db_ = nullptr;
    host_ = nullptr;
    env_ = nullptr;
  }

  static scion::ScionlabEnv* env_;
  static apps::ScionHost* host_;
  static docdb::Database* db_;
  static select::PathSelector* selector_;
};

scion::ScionlabEnv* UpinFwTest::env_ = nullptr;
apps::ScionHost* UpinFwTest::host_ = nullptr;
docdb::Database* UpinFwTest::db_ = nullptr;
select::PathSelector* UpinFwTest::selector_ = nullptr;

// ------------------------------------------------------------- explorer

TEST_F(UpinFwTest, ExplorerPublishesEveryAs) {
  DomainExplorer explorer(*db_, env_->topology);
  ASSERT_TRUE(explorer.refresh().ok());
  EXPECT_EQ(explorer.published_count(), env_->topology.ases().size());
}

TEST_F(UpinFwTest, ExplorerRefreshIsIdempotent) {
  DomainExplorer explorer(*db_, env_->topology);
  ASSERT_TRUE(explorer.refresh().ok());
  ASSERT_TRUE(explorer.refresh().ok());
  EXPECT_EQ(explorer.published_count(), env_->topology.ases().size());
}

TEST_F(UpinFwTest, ExplorerDescribeCarriesMetadata) {
  DomainExplorer explorer(*db_, env_->topology);
  ASSERT_TRUE(explorer.refresh().ok());
  const auto doc = explorer.describe(kSingapore);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().get("country")->as_string(), "SG");
  EXPECT_EQ(doc.value().get("role")->as_string(), "core");
  EXPECT_EQ(doc.value().get("operator")->as_string(), "AWS");
  EXPECT_GT(doc.value().get("degree")->as_int(), 0);
}

TEST_F(UpinFwTest, ExplorerFindNodesByQuery) {
  DomainExplorer explorer(*db_, env_->topology);
  ASSERT_TRUE(explorer.refresh().ok());
  const auto us_nodes =
      explorer.find_nodes(util::Value::object({{"country", "US"}}));
  ASSERT_TRUE(us_nodes.ok());
  EXPECT_GE(us_nodes.value().size(), 4u);
  for (const scion::IsdAsn ia : us_nodes.value()) {
    EXPECT_EQ(env_->topology.find_as(ia)->country, "US");
  }
  const auto cores =
      explorer.find_nodes(util::Value::object({{"role", "core"}}));
  ASSERT_TRUE(cores.ok());
  EXPECT_EQ(cores.value().size(), 11u);
}

TEST(ExplorerStandalone, DescribeBeforeRefreshFails) {
  const scion::ScionlabEnv env = scion::scionlab_topology();
  docdb::Database db;
  const DomainExplorer explorer(db, env.topology);
  EXPECT_FALSE(explorer.describe(kIreland).ok());
  EXPECT_EQ(explorer.published_count(), 0u);
}

// ------------------------------------------------------------ controller

TEST_F(UpinFwTest, ControllerAppliesAndPins) {
  PathController controller(*host_, *selector_);
  select::UserRequest request;
  request.server_id = 3;
  request.objective = select::Objective::kLowestLatency;
  const auto applied = controller.apply(request);
  ASSERT_TRUE(applied.ok());
  const auto active = controller.active(3);
  ASSERT_TRUE(active.has_value());
  EXPECT_EQ(active->chosen.summary.path_id,
            applied.value().chosen.summary.path_id);
}

TEST_F(UpinFwTest, ControllerPingUsesPinnedPath) {
  PathController controller(*host_, *selector_);
  // Pin a Singapore-detour path by requesting something only it offers:
  // exclude everything except the detour via an AS allow trick — instead
  // simply pin lowest latency and compare with an unpinned ping.
  select::UserRequest request;
  request.server_id = 3;
  request.objective = select::Objective::kLowestLatency;
  ASSERT_TRUE(controller.apply(request).ok());
  const auto pinned = controller.ping(3);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned.value().path.sequence(),
            controller.active(3)->chosen.summary.sequence);
}

TEST_F(UpinFwTest, ControllerUnknownServerFails) {
  PathController controller(*host_, *selector_);
  EXPECT_FALSE(controller.ping(99).ok());
}

TEST_F(UpinFwTest, ControllerReleaseDropsPin) {
  PathController controller(*host_, *selector_);
  select::UserRequest request;
  request.server_id = 3;
  ASSERT_TRUE(controller.apply(request).ok());
  EXPECT_TRUE(controller.release(3));
  EXPECT_FALSE(controller.release(3));
  EXPECT_FALSE(controller.active(3).has_value());
}

TEST_F(UpinFwTest, ControllerRejectsUnsatisfiableIntent) {
  PathController controller(*host_, *selector_);
  select::UserRequest request;
  request.server_id = 3;
  request.exclude_operators = {"AWS"};  // destination is AWS
  EXPECT_FALSE(controller.apply(request).ok());
  EXPECT_FALSE(controller.active(3).has_value());
}

TEST_F(UpinFwTest, ControllerHonorsAlternateStrategy) {
  // Under geo-constrained, the winner is the geographically shortest
  // admitted path — by construction the same ranking select_with returns.
  PathController controller(*host_, *selector_,
                            std::string(select::kGeoConstrained));
  select::UserRequest request;
  request.server_id = 3;
  const auto applied = controller.apply(request);
  ASSERT_TRUE(applied.ok());
  const auto expected = selector_->select_with(select::kGeoConstrained, request);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected.value().ranked.empty());
  EXPECT_EQ(applied.value().chosen.summary.path_id,
            expected.value().ranked.front().summary.path_id);
}

TEST_F(UpinFwTest, ControllerUnknownStrategyFailsOnApply) {
  PathController controller(*host_, *selector_, "no-such-strategy");
  select::UserRequest request;
  request.server_id = 3;
  const auto applied = controller.apply(request);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.error().code, util::ErrorCode::kNotFound);
  EXPECT_FALSE(controller.active(3).has_value());
}

TEST_F(UpinFwTest, ControllerPinsAndPingsMultipathPlans) {
  PathController controller(*host_, *selector_);
  select::UserRequest request;
  request.server_id = 3;
  const auto applied = controller.apply_multipath(request, 2);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().k, 2u);
  EXPECT_EQ(applied.value().plan.subflows.size(), 2u);
  const auto active = controller.active_multipath(3);
  ASSERT_TRUE(active.has_value());
  EXPECT_EQ(active->plan.subflows[0].summary.path_id,
            applied.value().plan.subflows[0].summary.path_id);

  apps::MultipathPingOptions options;
  options.count = 10;
  const auto report = controller.multipath_ping(3, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().subflows.size(), 2u);
  EXPECT_GT(report.value().aggregate.sent(), 0u);
}

TEST_F(UpinFwTest, ControllerMultipathPingNeedsAPinnedPlan) {
  PathController controller(*host_, *selector_);
  const auto report = controller.multipath_ping(3);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, util::ErrorCode::kNotFound);
}

TEST_F(UpinFwTest, ControllerReresolveReportsStability) {
  PathController controller(*host_, *selector_);
  select::UserRequest request;
  request.server_id = 3;
  ASSERT_TRUE(controller.apply(request).ok());
  const auto changed = controller.reresolve_all();
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed.value().empty()) << "same data, same winner";
}

TEST(ControllerFailover, ReresolveSwitchesAwayFromDegradedPath) {
  // The UPIN loop under a fault: pin the best path, degrade it, measure
  // again, re-resolve — the controller must move the intent to a
  // different path.
  const scion::ScionlabEnv env = scion::scionlab_topology();
  apps::ScionHost host(env, 42, env.user_as, "10.0.8.1");
  docdb::Database db;

  measure::TestSuiteConfig config;
  config.iterations = 3;
  config.server_ids = {{3}};
  {
    measure::TestSuite suite(host, db, config);
    ASSERT_TRUE(suite.run().ok());
  }

  const select::PathSelector selector(db, env.topology);
  PathController controller(host, selector);
  select::UserRequest request;
  request.server_id = 3;
  request.objective = select::Objective::kLowestLatency;
  // Only trust fresh data on re-resolution.
  const auto applied = controller.apply(request);
  ASSERT_TRUE(applied.ok());
  const std::string pinned = applied.value().chosen.summary.path_id;

  // Degrade the pinned path's third hop — the ETH core, which has the
  // SWITCH core as an alternative.  (The AP and the Frankfurt parent are
  // shared by *every* Ireland path, so degrading those would leave no
  // admissible alternative.)
  const scion::IsdAsn degraded = applied.value().chosen.summary.hops[2];
  ASSERT_EQ(degraded, (scion::IsdAsn{17, scion::make_asn(0, 0x1101)}));
  const util::SimTime outage_start = host.clock().now();
  host.inject_outage(degraded, outage_start,
                     outage_start + util::sim_seconds(24 * 3600.0), 0.4);

  // Fresh measurements under degradation.
  config.skip_collection = true;
  measure::TestSuite again(host, db, config);
  ASSERT_TRUE(again.run().ok());

  // Re-resolve using only post-outage samples.
  select::UserRequest fresh = request;
  fresh.since_timestamp_ms = outage_start.count() / 1'000'000;
  fresh.max_loss_pct = 10.0;
  const auto reapplied = controller.apply(fresh);
  ASSERT_TRUE(reapplied.ok());
  EXPECT_NE(reapplied.value().chosen.summary.path_id, pinned)
      << "controller must route around the degraded hop";
  EXPECT_FALSE(std::any_of(
      reapplied.value().chosen.summary.hops.begin(),
      reapplied.value().chosen.summary.hops.end(),
      [&](scion::IsdAsn ia) { return ia == degraded; }));
}

// --------------------------------------------------------------- tracer

TEST_F(UpinFwTest, TracerStoresAndReloadsTraces) {
  PathTracer tracer(*host_, *db_);
  const auto best = selector_->best([] {
    select::UserRequest request;
    request.server_id = 3;
    return request;
  }());
  ASSERT_TRUE(best.ok());
  const auto trace = tracer.trace_and_store(
      3, best.value().summary.path_id, env_->servers[2],
      best.value().summary.sequence);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().hops.size(), best.value().summary.hop_count - 1);

  const auto reloaded = tracer.traces_for(best.value().summary.path_id);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_GE(reloaded.value().size(), 1u);
  EXPECT_EQ(reloaded.value().back().hops.size(), trace.value().hops.size());
  EXPECT_EQ(reloaded.value().back().complete, trace.value().complete);
}

TEST_F(UpinFwTest, TracerRecordsPartialTraceUnderOutage) {
  // A dedicated host so the fixture's timeline is untouched.
  apps::ScionHost host(*env_, 42, env_->user_as, "10.0.8.1");
  host.inject_outage(kIreland, util::SimTime::zero(),
                     util::sim_seconds(1e6));
  docdb::Database db;
  PathTracer tracer(host, db);
  const auto listings = host.showpaths(kIreland, {});
  ASSERT_TRUE(listings.ok());
  const scion::Path& path = listings.value().front().path;
  const auto trace = tracer.trace_and_store(3, "3_0", env_->servers[2],
                                            path.sequence());
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace.value().complete) << "the dark hop does not answer";
  EXPECT_FALSE(trace.value().hops.back().second.has_value());
  // Intermediate hops before the outage still answer.
  EXPECT_TRUE(trace.value().hops.front().second.has_value());

  const auto reloaded = tracer.traces_for("3_0");
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded.value().size(), 1u);
  EXPECT_FALSE(reloaded.value().front().complete);
}

TEST_F(UpinFwTest, TracerTracesForUnknownPathEmpty) {
  PathTracer tracer(*host_, *db_);
  const auto traces = tracer.traces_for("99_99");
  ASSERT_TRUE(traces.ok());
  EXPECT_TRUE(traces.value().empty());
}

// -------------------------------------------------------------- verifier

TraceRecord make_trace(const std::vector<scion::IsdAsn>& hops,
                       bool complete = true) {
  TraceRecord trace;
  trace.path_id = "3_0";
  trace.server_id = 3;
  trace.complete = complete;
  for (const scion::IsdAsn ia : hops) {
    trace.hops.emplace_back(
        ia, complete ? std::optional<double>(10.0) : std::nullopt);
  }
  return trace;
}

simnet::PingStats make_ping(double rtt_ms, std::size_t lost = 0,
                            std::size_t total = 30) {
  simnet::PingStats stats;
  for (std::size_t i = 0; i < total; ++i) {
    if (i < lost) {
      stats.rtt_ms.push_back(std::nullopt);
    } else {
      stats.rtt_ms.push_back(rtt_ms + 0.01 * static_cast<double>(i));
    }
  }
  return stats;
}

TEST_F(UpinFwTest, VerifierSatisfiedWhenAllIsdsEnabled) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(16);
  verifier.enable_isd(17);
  select::UserRequest request;
  request.server_id = 3;
  request.max_latency_ms = 100.0;
  const auto report = verifier.verify(
      request,
      make_trace({scion::scionlab::kEthzAp, scion::scionlab::kFrankfurtCore,
                  kIreland}),
      make_ping(35.0));
  EXPECT_EQ(report.verdict, Verdict::kSatisfied);
  EXPECT_TRUE(report.unverifiable_hops.empty());
}

TEST_F(UpinFwTest, VerifierUncertainOnForeignIsd) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(17);  // 16 stays non-UPIN
  select::UserRequest request;
  request.server_id = 3;
  const auto report = verifier.verify(
      request,
      make_trace({scion::scionlab::kEthzAp, scion::scionlab::kFrankfurtCore,
                  kIreland}),
      make_ping(35.0));
  EXPECT_EQ(report.verdict, Verdict::kUncertain);
  EXPECT_EQ(report.unverifiable_hops.size(), 2u);  // the two ISD-16 hops
}

TEST_F(UpinFwTest, VerifierViolatedOnExcludedHop) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(16);
  verifier.enable_isd(17);
  select::UserRequest request;
  request.server_id = 3;
  request.exclude_countries = {"US"};
  const auto report = verifier.verify(
      request, make_trace({scion::scionlab::kEthzAp, kOhio, kIreland}),
      make_ping(170.0));
  EXPECT_EQ(report.verdict, Verdict::kViolated);
}

TEST_F(UpinFwTest, VerifierViolatedOnLatencyBound) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(16);
  verifier.enable_isd(17);
  select::UserRequest request;
  request.server_id = 3;
  request.max_latency_ms = 50.0;
  const auto report = verifier.verify(
      request,
      make_trace({scion::scionlab::kEthzAp, kSingapore, kIreland}),
      make_ping(280.0));
  EXPECT_EQ(report.verdict, Verdict::kViolated);
}

TEST_F(UpinFwTest, VerifierViolatedOnLossAndJitterBounds) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(16);
  verifier.enable_isd(17);
  select::UserRequest request;
  request.server_id = 3;
  request.max_loss_pct = 5.0;
  const auto lossy = verifier.verify(
      request, make_trace({scion::scionlab::kEthzAp, kIreland}),
      make_ping(35.0, /*lost=*/10));
  EXPECT_EQ(lossy.verdict, Verdict::kViolated);

  select::UserRequest jittery;
  jittery.server_id = 3;
  jittery.max_jitter_ms = 0.001;
  const auto jitter_report = verifier.verify(
      jittery, make_trace({scion::scionlab::kEthzAp, kIreland}),
      make_ping(35.0));
  EXPECT_EQ(jitter_report.verdict, Verdict::kViolated);
}

TEST_F(UpinFwTest, VerifierEnforcesIsdAllowList) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(16);
  verifier.enable_isd(17);
  select::UserRequest request;
  request.server_id = 3;
  request.allowed_isds = {17};  // the AWS hops are outside the allow-list
  const auto report = verifier.verify(
      request,
      make_trace({scion::scionlab::kEthzAp, scion::scionlab::kFrankfurtCore,
                  kIreland}),
      make_ping(35.0));
  EXPECT_EQ(report.verdict, Verdict::kViolated);
}

TEST_F(UpinFwTest, VerifierPassesWithinJitterBudget) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(16);
  verifier.enable_isd(17);
  select::UserRequest request;
  request.server_id = 3;
  request.max_jitter_ms = 5.0;  // generous budget
  const auto report = verifier.verify(
      request, make_trace({scion::scionlab::kEthzAp, kIreland}),
      make_ping(35.0));
  EXPECT_EQ(report.verdict, Verdict::kSatisfied);
  EXPECT_TRUE(report.all_passed());
}

TEST_F(UpinFwTest, VerifierViolatedOnIncompleteTrace) {
  PathVerifier verifier(env_->topology);
  verifier.enable_isd(16);
  verifier.enable_isd(17);
  select::UserRequest request;
  request.server_id = 3;
  const auto report = verifier.verify(
      request,
      make_trace({scion::scionlab::kEthzAp, kIreland}, /*complete=*/false),
      make_ping(35.0));
  EXPECT_EQ(report.verdict, Verdict::kViolated);
}

TEST(VerdictNames, Stable) {
  EXPECT_STREQ(to_string(Verdict::kSatisfied), "satisfied");
  EXPECT_STREQ(to_string(Verdict::kUncertain), "uncertain");
  EXPECT_STREQ(to_string(Verdict::kViolated), "violated");
}

// ------------------------------------------------------------ recommender

TEST_F(UpinFwTest, RecommendVideoCallPicksConsistentPath) {
  const Recommender recommender(*selector_);
  const auto recommendation =
      recommender.recommend(IntentProfile::kVideoCall, 3);
  ASSERT_TRUE(recommendation.ok());
  ASSERT_FALSE(recommendation.value().ranked.empty());
  EXPECT_EQ(recommendation.value().request.objective,
            select::Objective::kMostConsistent);
  // The jitter-heavy detours never win a video-call recommendation.
  for (const scion::IsdAsn hop :
       recommendation.value().ranked.front().summary.hops) {
    EXPECT_NE(hop, kSingapore);
    EXPECT_NE(hop, kOhio);
  }
  EXPECT_FALSE(recommendation.value().summary.empty());
}

TEST_F(UpinFwTest, RecommendProfilesMapToObjectives) {
  EXPECT_EQ(make_request(IntentProfile::kGaming, 3).objective,
            select::Objective::kLowestLatency);
  EXPECT_EQ(make_request(IntentProfile::kBulkTransfer, 3).objective,
            select::Objective::kHighestBandwidth);
  EXPECT_EQ(make_request(IntentProfile::kBulkTransfer, 3).bw_direction,
            select::BwDirection::kDownstream);
  EXPECT_EQ(make_request(IntentProfile::kUpload, 3).bw_direction,
            select::BwDirection::kUpstream);
  EXPECT_EQ(make_request(IntentProfile::kReliableSync, 3).objective,
            select::Objective::kLowestLoss);
}

TEST_F(UpinFwTest, RecommendKeepsBaseSovereignty) {
  select::UserRequest base;
  base.exclude_countries = {"US"};
  const select::UserRequest request =
      make_request(IntentProfile::kGaming, 3, base);
  EXPECT_EQ(request.exclude_countries, std::vector<std::string>{"US"});
  EXPECT_EQ(request.server_id, 3);
}

TEST_F(UpinFwTest, RecommendHonorsTopN) {
  const Recommender recommender(*selector_);
  const auto recommendation =
      recommender.recommend(IntentProfile::kGaming, 3, 2);
  ASSERT_TRUE(recommendation.ok());
  EXPECT_LE(recommendation.value().ranked.size(), 2u);
}

TEST_F(UpinFwTest, RecommendUnsatisfiableReturnsNotFound) {
  const Recommender recommender(*selector_);
  select::UserRequest base;
  base.exclude_operators = {"AWS"};
  const auto recommendation =
      recommender.recommend(IntentProfile::kGaming, 3, 3, base);
  ASSERT_FALSE(recommendation.ok());
  EXPECT_EQ(recommendation.error().code, util::ErrorCode::kNotFound);
}

TEST(ProfileNames, Stable) {
  EXPECT_STREQ(to_string(IntentProfile::kVideoCall), "video-call");
  EXPECT_STREQ(to_string(IntentProfile::kUpload), "upload");
}

}  // namespace
}  // namespace upin::upinfw
