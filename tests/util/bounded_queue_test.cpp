// Tests for util/bounded_queue: ordering, backpressure, close semantics,
// and a multi-producer stress run (race-checked under TSan in CI).
#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace upin::util {
namespace {

TEST(BoundedQueue, PushAssignsSequenceNumbersInQueueOrder) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.push(10), 1u);
  EXPECT_EQ(queue.push(20), 2u);
  EXPECT_EQ(queue.push(30), 3u);
  EXPECT_EQ(queue.pushed(), 3u);

  std::vector<int> drained;
  ASSERT_TRUE(queue.pop_all(drained));
  EXPECT_EQ(drained, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, PopAllDrainsTheWholeGroup) {
  BoundedQueue<std::string> queue(4);
  (void)queue.push("a");
  (void)queue.push("b");
  std::vector<std::string> group;
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(group.size(), 2u);
  (void)queue.push("c");
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(group, std::vector<std::string>{"c"});
}

TEST(BoundedQueue, FullQueueBlocksProducerUntilDrained) {
  BoundedQueue<int> queue(2);
  (void)queue.push(1);
  (void)queue.push(2);

  std::atomic<bool> third_landed{false};
  std::thread producer([&] {
    (void)queue.push(3);  // blocks: queue is at capacity
    third_landed.store(true);
  });
  // The producer must be parked on backpressure, not completing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_landed.load());

  std::vector<int> group;
  ASSERT_TRUE(queue.pop_all(group));
  producer.join();
  EXPECT_TRUE(third_landed.load());
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(group, std::vector<int>{3});
}

TEST(BoundedQueue, CloseRejectsPushesAndDrainsRemainder) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.push(1), 1u);
  queue.close();
  EXPECT_EQ(queue.push(2), 0u) << "closed queue drops new items";

  std::vector<int> group;
  ASSERT_TRUE(queue.pop_all(group)) << "remaining items still drain";
  EXPECT_EQ(group, std::vector<int>{1});
  EXPECT_FALSE(queue.pop_all(group)) << "closed and drained";
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  (void)queue.push(1);
  std::thread producer([&] { EXPECT_EQ(queue.push(2), 0u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
}

TEST(BoundedQueue, TryPushNeverBlocksAndDistinguishesFullFromClosed) {
  BoundedQueue<int> queue(2);
  bool was_full = true;
  EXPECT_EQ(queue.try_push(1, &was_full), 1u);
  EXPECT_FALSE(was_full);
  EXPECT_EQ(queue.try_push(2, &was_full), 2u);
  EXPECT_FALSE(was_full);
  EXPECT_EQ(queue.try_push(3, &was_full), 0u) << "full lane rejects";
  EXPECT_TRUE(was_full) << "rejection reason: full, retryable";

  std::vector<int> group;
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(queue.try_push(4, &was_full), 3u) << "room again after drain";

  queue.close();
  EXPECT_EQ(queue.try_push(5, &was_full), 0u);
  EXPECT_FALSE(was_full) << "rejection reason: closed, not retryable";
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(group, std::vector<int>{4});
}

// Shutdown contract under contention: every item is either acknowledged
// with a nonzero sequence number and drained exactly once, or rejected
// with 0 and never seen by the consumer.  A close racing a full queue
// must release every blocked producer (no hang) and must not lose any
// acknowledged item or deliver a duplicate.  Run under TSan in CI.
TEST(BoundedQueue, CloseWhileFullStressLosesNoAckedItemNoDuplicates) {
  constexpr int kRounds = 25;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(3);  // tiny: producers park on backpressure

    std::vector<std::vector<int>> acked(kProducers);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, &acked, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const int item = p * kPerProducer + i;
          if (queue.push(item) > 0) {
            acked[static_cast<std::size_t>(p)].push_back(item);
          } else {
            return;  // closed: everything later would be dropped too
          }
        }
      });
    }

    std::vector<int> popped;
    std::thread consumer([&queue, &popped] {
      std::vector<int> group;
      while (queue.pop_all(group)) {
        popped.insert(popped.end(), group.begin(), group.end());
      }
    });

    // Close somewhere in the middle of the stream, while producers are
    // likely blocked on the full queue and the consumer mid-drain.
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    queue.close();

    for (auto& t : producers) t.join();  // no producer may hang
    consumer.join();                     // drains remainder, then stops

    std::vector<int> acked_all;
    for (const auto& per : acked) {
      acked_all.insert(acked_all.end(), per.begin(), per.end());
    }
    std::sort(acked_all.begin(), acked_all.end());
    std::sort(popped.begin(), popped.end());
    EXPECT_EQ(popped, acked_all)
        << "round " << round
        << ": consumer must see exactly the acknowledged items";
    EXPECT_EQ(queue.pushed(), acked_all.size());
  }
}

// Concurrent close + try_push + pop_all: the non-blocking producer path
// must obey the same accounting contract as the blocking one.
TEST(BoundedQueue, ConcurrentCloseTryPushPopStress) {
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> queue(4);
    std::atomic<std::size_t> acked{0};
    std::atomic<std::size_t> rejected_closed{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          bool was_full = false;
          if (queue.try_push(i, &was_full) > 0) {
            acked.fetch_add(1);
          } else if (!was_full) {
            rejected_closed.fetch_add(1);
            return;
          }
        }
      });
    }
    std::atomic<std::size_t> drained{0};
    std::thread consumer([&] {
      std::vector<int> group;
      while (queue.pop_all(group)) drained.fetch_add(group.size());
    });
    std::this_thread::sleep_for(std::chrono::microseconds(20 * round));
    queue.close();
    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_EQ(drained.load(), acked.load())
        << "round " << round << ": acked items drain exactly once";
  }
}

TEST(BoundedQueue, MultiProducerStressPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<std::pair<int, int>> queue(16);  // small: forces backpressure

  std::vector<std::pair<int, int>> all;
  std::thread consumer([&] {
    std::vector<std::pair<int, int>> group;
    while (queue.pop_all(group)) {
      all.insert(all.end(), group.begin(), group.end());
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_GT(queue.push({p, i}), 0u);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  consumer.join();

  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, i] : all) {
    const auto slot = static_cast<std::size_t>(p);
    EXPECT_EQ(i, next[slot]) << "producer " << p << " items out of order";
    ++next[slot];
  }
}

}  // namespace
}  // namespace upin::util
