// Tests for util/bounded_queue: ordering, backpressure, close semantics,
// and a multi-producer stress run (race-checked under TSan in CI).
#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace upin::util {
namespace {

TEST(BoundedQueue, PushAssignsSequenceNumbersInQueueOrder) {
  BoundedQueue<int> queue(8);
  EXPECT_EQ(queue.push(10), 1u);
  EXPECT_EQ(queue.push(20), 2u);
  EXPECT_EQ(queue.push(30), 3u);
  EXPECT_EQ(queue.pushed(), 3u);

  std::vector<int> drained;
  ASSERT_TRUE(queue.pop_all(drained));
  EXPECT_EQ(drained, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, PopAllDrainsTheWholeGroup) {
  BoundedQueue<std::string> queue(4);
  (void)queue.push("a");
  (void)queue.push("b");
  std::vector<std::string> group;
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(group.size(), 2u);
  (void)queue.push("c");
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(group, std::vector<std::string>{"c"});
}

TEST(BoundedQueue, FullQueueBlocksProducerUntilDrained) {
  BoundedQueue<int> queue(2);
  (void)queue.push(1);
  (void)queue.push(2);

  std::atomic<bool> third_landed{false};
  std::thread producer([&] {
    (void)queue.push(3);  // blocks: queue is at capacity
    third_landed.store(true);
  });
  // The producer must be parked on backpressure, not completing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_landed.load());

  std::vector<int> group;
  ASSERT_TRUE(queue.pop_all(group));
  producer.join();
  EXPECT_TRUE(third_landed.load());
  ASSERT_TRUE(queue.pop_all(group));
  EXPECT_EQ(group, std::vector<int>{3});
}

TEST(BoundedQueue, CloseRejectsPushesAndDrainsRemainder) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.push(1), 1u);
  queue.close();
  EXPECT_EQ(queue.push(2), 0u) << "closed queue drops new items";

  std::vector<int> group;
  ASSERT_TRUE(queue.pop_all(group)) << "remaining items still drain";
  EXPECT_EQ(group, std::vector<int>{1});
  EXPECT_FALSE(queue.pop_all(group)) << "closed and drained";
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  (void)queue.push(1);
  std::thread producer([&] { EXPECT_EQ(queue.push(2), 0u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
}

TEST(BoundedQueue, MultiProducerStressPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<std::pair<int, int>> queue(16);  // small: forces backpressure

  std::vector<std::pair<int, int>> all;
  std::thread consumer([&] {
    std::vector<std::pair<int, int>> group;
    while (queue.pop_all(group)) {
      all.insert(all.end(), group.begin(), group.end());
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_GT(queue.push({p, i}), 0u);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  consumer.join();

  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, i] : all) {
    const auto slot = static_cast<std::size_t>(p);
    EXPECT_EQ(i, next[slot]) << "producer " << p << " items out of order";
    ++next[slot];
  }
}

}  // namespace
}  // namespace upin::util
