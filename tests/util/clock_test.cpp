// Tests for util/clock.
#include "util/clock.hpp"

#include <gtest/gtest.h>

namespace upin::util {
namespace {

TEST(SimTimeConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(sim_seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_millis(sim_millis(12.25)), 12.25);
  EXPECT_DOUBLE_EQ(to_millis(sim_seconds(1.0)), 1000.0);
}

TEST(VirtualClock, StartsAtZero) {
  const VirtualClock clock;
  EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  clock.advance(sim_seconds(3.0));
  clock.advance(sim_millis(500));
  EXPECT_DOUBLE_EQ(to_seconds(clock.now()), 3.5);
}

TEST(VirtualClock, NegativeAdvanceIgnored) {
  VirtualClock clock;
  clock.advance(sim_seconds(1.0));
  clock.advance(SimDuration(-500));
  EXPECT_DOUBLE_EQ(to_seconds(clock.now()), 1.0);
}

TEST(VirtualClock, AdvanceToIsMonotone) {
  VirtualClock clock;
  clock.advance_to(sim_seconds(5.0));
  EXPECT_DOUBLE_EQ(to_seconds(clock.now()), 5.0);
  clock.advance_to(sim_seconds(2.0));  // in the past: no-op
  EXPECT_DOUBLE_EQ(to_seconds(clock.now()), 5.0);
}

TEST(VirtualClock, Reset) {
  VirtualClock clock;
  clock.advance(sim_seconds(9.0));
  clock.reset();
  EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(TimestampToken, ZeroPaddedMilliseconds) {
  EXPECT_EQ(timestamp_token(sim_seconds(12.0)), "000000012000");
  EXPECT_EQ(timestamp_token(SimTime::zero()), "000000000000");
}

TEST(TimestampToken, SortsLexicallyLikeNumerically) {
  EXPECT_LT(timestamp_token(sim_seconds(2.0)), timestamp_token(sim_seconds(10.0)));
  EXPECT_LT(timestamp_token(sim_millis(999)), timestamp_token(sim_seconds(1.0)));
}

}  // namespace
}  // namespace upin::util
