// Tests for util/hmac against RFC 4231 vectors.
#include "util/hmac.hpp"

#include <gtest/gtest.h>

namespace upin::util {
namespace {

TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string message(50, '\xdd');
  EXPECT_EQ(to_hex(hmac_sha256(key, message)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Test Using Larger Than Block-Size Key - "
                                    "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, EmptyKeyAndMessageAreValid) {
  const Digest256 digest = hmac_sha256("", "");
  EXPECT_EQ(to_hex(digest).size(), 64u);
}

TEST(Hmac, KeySensitivity) {
  EXPECT_NE(to_hex(hmac_sha256("key1", "msg")),
            to_hex(hmac_sha256("key2", "msg")));
}

TEST(Hmac, MessageSensitivity) {
  EXPECT_NE(to_hex(hmac_sha256("key", "msg1")),
            to_hex(hmac_sha256("key", "msg2")));
}

TEST(DigestEqual, MatchesAndMismatches) {
  const Digest256 a = Sha256::hash("a");
  const Digest256 b = Sha256::hash("a");
  const Digest256 c = Sha256::hash("c");
  EXPECT_TRUE(digest_equal(a, b));
  EXPECT_FALSE(digest_equal(a, c));
}

TEST(DigestEqual, SingleBitDifference) {
  Digest256 a = Sha256::hash("a");
  Digest256 b = a;
  b[31] = static_cast<std::uint8_t>(b[31] ^ 0x01);
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace upin::util
