// Tests for util/json: value model, parser, writer, path access.
#include "util/json.hpp"

#include <gtest/gtest.h>

namespace upin::util {
namespace {

// ---------------------------------------------------------------- value model

TEST(JsonValue, DefaultIsNull) {
  const Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_STREQ(v.type_name(), "null");
}

TEST(JsonValue, BoolRoundTrip) {
  const Value v(true);
  ASSERT_TRUE(v.is_bool());
  EXPECT_TRUE(v.as_bool());
  EXPECT_FALSE(Value(false).as_bool());
}

TEST(JsonValue, IntRoundTrip) {
  const Value v(std::int64_t{-42});
  ASSERT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_DOUBLE_EQ(v.as_double(), -42.0);
}

TEST(JsonValue, DoubleRoundTrip) {
  const Value v(2.5);
  ASSERT_TRUE(v.is_double());
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
}

TEST(JsonValue, StringRoundTrip) {
  const Value v("hello");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(JsonValue, NumericEqualityAcrossRepresentations) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_EQ(Value(0), Value(0.0));
  EXPECT_FALSE(Value(1) == Value(1.5));
}

TEST(JsonValue, StringNeverEqualsNumber) {
  EXPECT_FALSE(Value("1") == Value(1));
}

TEST(JsonValue, ArrayBuilder) {
  const Value v = Value::array({1, "two", 3.0});
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[1].as_string(), "two");
}

TEST(JsonValue, ObjectBuilderPreservesInsertionOrder) {
  const Value v = Value::object({{"z", 1}, {"a", 2}, {"m", 3}});
  ASSERT_TRUE(v.is_object());
  std::vector<std::string> keys;
  for (const auto& [key, unused] : v.as_object()) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonValue, ObjectEqualityIsOrderInsensitive) {
  const Value a = Value::object({{"x", 1}, {"y", 2}});
  const Value b = Value::object({{"y", 2}, {"x", 1}});
  EXPECT_EQ(a, b);
}

TEST(JsonValue, ObjectInequalityOnValue) {
  const Value a = Value::object({{"x", 1}});
  const Value b = Value::object({{"x", 2}});
  EXPECT_FALSE(a == b);
}

TEST(JsonValue, TryAccessorsReturnNulloptOnMismatch) {
  const Value v("text");
  EXPECT_FALSE(v.try_bool().has_value());
  EXPECT_FALSE(v.try_int().has_value());
  EXPECT_FALSE(v.try_double().has_value());
  ASSERT_TRUE(v.try_string().has_value());
  EXPECT_EQ(*v.try_string(), "text");
}

TEST(JsonValue, TryDoubleAcceptsInt) {
  EXPECT_DOUBLE_EQ(*Value(7).try_double(), 7.0);
}

TEST(JsonValue, GetOnNonObjectIsNull) {
  EXPECT_EQ(Value(3).get("x"), nullptr);
  EXPECT_EQ(Value().get("x"), nullptr);
}

TEST(JsonValue, GetPathTraversesNesting) {
  Value v;
  v["stats"]["latency_ms"] = Value(12.5);
  const Value* found = v.get_path("stats.latency_ms");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->as_double(), 12.5);
}

TEST(JsonValue, GetPathMissingIntermediate) {
  Value v;
  v["stats"] = Value(1);
  EXPECT_EQ(v.get_path("stats.latency_ms"), nullptr);
  EXPECT_EQ(v.get_path("nothing.at.all"), nullptr);
}

TEST(JsonValue, SubscriptConvertsNullToObject) {
  Value v;
  v["a"] = Value(1);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("a")->as_int(), 1);
}

TEST(JsonValue, SubscriptOverwrites) {
  Value v;
  v["a"] = Value(1);
  v["a"] = Value(2);
  EXPECT_EQ(v.get("a")->as_int(), 2);
  EXPECT_EQ(v.as_object().size(), 1u);
}

// ------------------------------------------------------------------ JsonObject

TEST(JsonObject, SetAndFind) {
  JsonObject object;
  object.set("k", Value(5));
  ASSERT_TRUE(object.contains("k"));
  EXPECT_EQ(object.find("k")->as_int(), 5);
  EXPECT_EQ(object.find("missing"), nullptr);
}

TEST(JsonObject, EraseRemovesKey) {
  JsonObject object;
  object.set("k", Value(5));
  EXPECT_TRUE(object.erase("k"));
  EXPECT_FALSE(object.erase("k"));
  EXPECT_TRUE(object.empty());
}

// --------------------------------------------------------------------- writer

TEST(JsonWriter, CompactPrimitives) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(JsonWriter, DoubleAlwaysReparsesAsDouble) {
  const std::string text = Value(3.0).dump();
  const Value reparsed = Value::parse(text).value();
  EXPECT_TRUE(reparsed.is_double());
  EXPECT_DOUBLE_EQ(reparsed.as_double(), 3.0);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(Value("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Value("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Value(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonWriter, CompactContainers) {
  const Value v = Value::object({{"a", Value::array({1, 2})}, {"b", "x"}});
  EXPECT_EQ(v.dump(), R"({"a":[1,2],"b":"x"})");
}

TEST(JsonWriter, EmptyContainers) {
  EXPECT_EQ(Value(Value::Array{}).dump(), "[]");
  EXPECT_EQ(Value(JsonObject{}).dump(), "{}");
}

TEST(JsonWriter, PrettyPrinting) {
  const Value v = Value::object({{"a", 1}});
  EXPECT_EQ(v.dump(2), "{\n  \"a\": 1\n}");
}

// --------------------------------------------------------------------- parser

TEST(JsonParser, ParsesPrimitives) {
  EXPECT_TRUE(Value::parse("null").value().is_null());
  EXPECT_TRUE(Value::parse("true").value().as_bool());
  EXPECT_FALSE(Value::parse("false").value().as_bool());
  EXPECT_EQ(Value::parse("-17").value().as_int(), -17);
  EXPECT_DOUBLE_EQ(Value::parse("2.75").value().as_double(), 2.75);
  EXPECT_EQ(Value::parse("\"s\"").value().as_string(), "s");
}

TEST(JsonParser, IntegerStaysInt) {
  const Value v = Value::parse("9007199254740993").value();
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 9007199254740993LL);
}

TEST(JsonParser, ScientificNotation) {
  EXPECT_DOUBLE_EQ(Value::parse("1e3").value().as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Value::parse("-2.5E-2").value().as_double(), -0.025);
}

TEST(JsonParser, NestedStructures) {
  const auto parsed =
      Value::parse(R"({"servers": [{"id": 1, "up": true}], "n": 2})");
  ASSERT_TRUE(parsed.ok());
  const Value& v = parsed.value();
  EXPECT_EQ(v.get_path("n")->as_int(), 2);
  EXPECT_TRUE(v.get("servers")->as_array()[0].get("up")->as_bool());
}

TEST(JsonParser, WhitespaceTolerant) {
  const auto parsed = Value::parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().get("a")->as_array().size(), 2u);
}

TEST(JsonParser, StringEscapes) {
  const auto parsed = Value::parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParser, UnicodeEscapeMultibyte) {
  // U+00E9 (é) -> two UTF-8 bytes; U+20AC (€) -> three.
  EXPECT_EQ(Value::parse(R"("é")").value().as_string(), "\xC3\xA9");
  EXPECT_EQ(Value::parse(R"("€")").value().as_string(), "\xE2\x82\xAC");
}

TEST(JsonParser, RejectsTrailingGarbage) {
  EXPECT_FALSE(Value::parse("1 2").ok());
  EXPECT_FALSE(Value::parse("{} x").ok());
}

TEST(JsonParser, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[", "\"unterminated", "{\"a\":}", "{\"a\" 1}", "[1,]",
        "{,}", "tru", "nul", "+1", "01x", "\"bad\\q\"", "--3", "-"}) {
    EXPECT_FALSE(Value::parse(bad).ok()) << "input: " << bad;
  }
}

TEST(JsonParser, RejectsBareMinusAndDot) {
  EXPECT_FALSE(Value::parse(".5").ok());
}

TEST(JsonParser, ErrorCarriesOffset) {
  const auto parsed = Value::parse("{\"a\": bad}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParseError);
  EXPECT_NE(parsed.error().message.find("offset"), std::string::npos);
}

TEST(JsonParser, DuplicateKeysLastWins) {
  const auto parsed = Value::parse(R"({"a": 1, "a": 2})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().get("a")->as_int(), 2);
  EXPECT_EQ(parsed.value().as_object().size(), 1u);
}

TEST(JsonParser, DeeplyNestedArrays) {
  std::string text;
  for (int i = 0; i < 60; ++i) text += "[";
  text += "1";
  for (int i = 0; i < 60; ++i) text += "]";
  ASSERT_TRUE(Value::parse(text).ok());
}

TEST(JsonParser, RejectsAdversarialNestingDepth) {
  // Unbounded recursion would smash the stack; the parser caps depth.
  std::string bomb(100'000, '[');
  const auto parsed = Value::parse(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("nesting too deep"),
            std::string::npos);
  // Mixed container bomb too.
  std::string mixed;
  for (int i = 0; i < 50'000; ++i) mixed += R"({"a":[)";
  EXPECT_FALSE(Value::parse(mixed).ok());
}

// --------------------------------------------------------------- round trips

TEST(JsonRoundTrip, CompactAndPrettyAgree) {
  const auto original = Value::parse(
      R"({"_id":"2_15","isds":[16,17],"bw":{"up_64":4.1},"ok":true,"n":null})");
  ASSERT_TRUE(original.ok());
  const Value compact = Value::parse(original.value().dump()).value();
  const Value pretty = Value::parse(original.value().dump(4)).value();
  EXPECT_EQ(compact, original.value());
  EXPECT_EQ(pretty, original.value());
}

TEST(JsonRoundTrip, SpecialCharactersSurvive) {
  const Value original(std::string("tab\t nl\n quote\" back\\ unicode\xC3\xA9"));
  EXPECT_EQ(Value::parse(original.dump()).value(), original);
}

}  // namespace
}  // namespace upin::util
