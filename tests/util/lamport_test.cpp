// Tests for util/lamport one-time signatures.
#include "util/lamport.hpp"

#include <gtest/gtest.h>

namespace upin::util {
namespace {

LamportKeyPair test_keys(std::uint64_t seed = 99) {
  Rng rng(seed);
  return lamport_generate(rng);
}

TEST(Lamport, SignVerifyRoundTrip) {
  const LamportKeyPair keys = test_keys();
  const LamportSignature sig = lamport_sign(keys.private_key, "batch digest");
  EXPECT_TRUE(lamport_verify(keys.public_key, "batch digest", sig));
}

TEST(Lamport, RejectsDifferentMessage) {
  const LamportKeyPair keys = test_keys();
  const LamportSignature sig = lamport_sign(keys.private_key, "message A");
  EXPECT_FALSE(lamport_verify(keys.public_key, "message B", sig));
}

TEST(Lamport, RejectsForeignKey) {
  const LamportKeyPair alice = test_keys(1);
  const LamportKeyPair mallory = test_keys(2);
  const LamportSignature sig = lamport_sign(mallory.private_key, "msg");
  EXPECT_FALSE(lamport_verify(alice.public_key, "msg", sig));
}

TEST(Lamport, RejectsTamperedSignatureBlock) {
  const LamportKeyPair keys = test_keys();
  LamportSignature sig = lamport_sign(keys.private_key, "msg");
  sig.revealed[0][0] = static_cast<std::uint8_t>(sig.revealed[0][0] ^ 0xff);
  EXPECT_FALSE(lamport_verify(keys.public_key, "msg", sig));
}

TEST(Lamport, RejectsSwappedBlocks) {
  const LamportKeyPair keys = test_keys();
  LamportSignature sig = lamport_sign(keys.private_key, "msg");
  std::swap(sig.revealed[3], sig.revealed[4]);
  // Overwhelmingly likely to fail verification (blocks are bit-specific).
  EXPECT_FALSE(lamport_verify(keys.public_key, "msg", sig));
}

TEST(Lamport, EmptyMessageSignable) {
  const LamportKeyPair keys = test_keys();
  const LamportSignature sig = lamport_sign(keys.private_key, "");
  EXPECT_TRUE(lamport_verify(keys.public_key, "", sig));
  EXPECT_FALSE(lamport_verify(keys.public_key, "x", sig));
}

TEST(Lamport, GenerationIsDeterministicPerSeed) {
  const LamportKeyPair a = test_keys(7);
  const LamportKeyPair b = test_keys(7);
  EXPECT_EQ(a.public_key, b.public_key);
}

TEST(Lamport, DistinctSeedsDistinctKeys) {
  EXPECT_FALSE(test_keys(7).public_key == test_keys(8).public_key);
}

TEST(Lamport, FingerprintIsStableAndDiscriminating) {
  const LamportKeyPair a = test_keys(7);
  EXPECT_EQ(a.public_key.fingerprint(), test_keys(7).public_key.fingerprint());
  EXPECT_NE(to_hex(a.public_key.fingerprint()),
            to_hex(test_keys(8).public_key.fingerprint()));
}

TEST(Lamport, PublicImagesAreHashesOfPreimages) {
  const LamportKeyPair keys = test_keys();
  for (std::size_t bit : {std::size_t{0}, std::size_t{128}, std::size_t{255}}) {
    for (std::size_t value = 0; value < 2; ++value) {
      EXPECT_EQ(Sha256::hash(keys.private_key.preimages[bit][value]),
                keys.public_key.images[bit][value]);
    }
  }
}

}  // namespace
}  // namespace upin::util
