// Tests for util/log.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace upin::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_level(LogLevel::kDebug);
    Log::set_sink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string(message));
    });
  }
  void TearDown() override {
    Log::set_sink(nullptr);
    Log::set_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogTest, CapturesMessages) {
  Log::info("hello");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello");
}

TEST_F(LogTest, FiltersBelowLevel) {
  Log::set_level(LogLevel::kError);
  Log::debug("d");
  Log::info("i");
  Log::warn("w");
  Log::error("e");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "e");
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  Log::error("should not appear");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelRoundTrip) {
  Log::set_level(LogLevel::kInfo);
  EXPECT_EQ(Log::level(), LogLevel::kInfo);
}

TEST_F(LogTest, LazyBuilderRunsWhenEnabled) {
  int built = 0;
  Log::debug([&] {
    ++built;
    return std::string("built once");
  });
  EXPECT_EQ(built, 1);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "built once");
}

TEST_F(LogTest, LazyBuilderNotInvokedWhenFiltered) {
  Log::set_level(LogLevel::kError);
  bool built = false;
  Log::debug([&] {
    built = true;
    return std::string("expensive formatting");
  });
  Log::info([&] {
    built = true;
    return std::string("expensive formatting");
  });
  Log::warn([&] {
    built = true;
    return std::string("expensive formatting");
  });
  EXPECT_FALSE(built);  // the whole point of the lazy overloads
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, EnabledMatchesLevelFilter) {
  Log::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
}

TEST(LogLevelNames, Stable) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "debug");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "warn");
  EXPECT_STREQ(to_string(LogLevel::kOff), "off");
}

}  // namespace
}  // namespace upin::util
