// Tests for util/result.
#include "util/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace upin::util {
namespace {

TEST(Result, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  const Result<int> r(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
}

TEST(Result, ValueOrFallback) {
  const Result<std::string> ok(std::string("x"));
  const Result<std::string> bad(ErrorCode::kTimeout, "late");
  EXPECT_EQ(ok.value_or("fallback"), "x");
  EXPECT_EQ(bad.value_or("fallback"), "fallback");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ErrorPropagationAcrossTypes) {
  const Result<int> inner(ErrorCode::kParseError, "bad json");
  const Result<std::string> outer(inner.error());
  EXPECT_EQ(outer.error(), inner.error());
}

TEST(Status, DefaultIsSuccess) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(Status::success().ok());
}

TEST(Status, CarriesError) {
  const Status s(ErrorCode::kPermissionDenied, "no");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kPermissionDenied);
}

TEST(ErrorCode, NamesAreStable) {
  EXPECT_STREQ(to_string(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(ErrorCode::kUnreachable), "unreachable");
  EXPECT_STREQ(to_string(ErrorCode::kConflict), "conflict");
  EXPECT_STREQ(to_string(ErrorCode::kInternal), "internal");
  EXPECT_STREQ(to_string(ErrorCode::kRevoked), "revoked");
  EXPECT_STREQ(to_string(ErrorCode::kExpired), "expired");
}

}  // namespace
}  // namespace upin::util
