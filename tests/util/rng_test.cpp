// Tests for util/rng: determinism, distribution sanity, forking.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace upin::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicByLabel) {
  const Rng parent(7);
  Rng a = parent.fork("link:A-B");
  Rng b = parent.fork("link:A-B");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkDifferentLabelsDiverge) {
  const Rng parent(7);
  Rng a = parent.fork("x");
  Rng b = parent.fork("y");
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(9), b(9);
  (void)a.fork("anything");
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(9, 3), 9);  // lo >= hi returns lo
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(29);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 1.5);
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-2.0));  // clamped
    EXPECT_TRUE(rng.bernoulli(5.0));    // clamped
  }
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(41);
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(43);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(47);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(Fnv1a64, KnownValuesAndDistinctness) {
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace upin::util
