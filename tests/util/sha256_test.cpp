// Tests for util/sha256 against FIPS 180-4 / NIST vectors.
#include "util/sha256.hpp"

#include <gtest/gtest.h>

namespace upin::util {
namespace {

std::string hex_of(std::string_view text) {
  return to_hex(Sha256::hash(text));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: padding forces an extra block.
  const std::string block(64, 'a');
  EXPECT_EQ(to_hex(Sha256::hash(block)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes fits length in the first block; 56 does not.
  EXPECT_EQ(hex_of(std::string(55, 'a')),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(hex_of(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(to_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.update("ab");
  hasher.update("");
  hasher.update("c");
  EXPECT_EQ(hasher.finish(), Sha256::hash("abc"));
}

TEST(Sha256, IncrementalAcrossBlockBoundary) {
  const std::string text(130, 'x');
  Sha256 hasher;
  hasher.update(std::string_view(text).substr(0, 63));
  hasher.update(std::string_view(text).substr(63, 2));
  hasher.update(std::string_view(text).substr(65));
  EXPECT_EQ(hasher.finish(), Sha256::hash(text));
}

TEST(Sha256, BinaryInput) {
  const std::array<std::uint8_t, 4> bytes{0x00, 0xff, 0x10, 0x80};
  const Digest256 digest = Sha256::hash(std::span<const std::uint8_t>(bytes));
  EXPECT_NE(to_hex(digest), hex_of(""));
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(hex_of("abc"), hex_of("abd"));
  EXPECT_NE(hex_of("abc"), hex_of("abc "));
}

TEST(ToHex, EncodesBytesLowercase) {
  const std::array<std::uint8_t, 3> bytes{0xDE, 0xAD, 0x01};
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(bytes)), "dead01");
}

TEST(ToHex, DigestIs64Chars) {
  EXPECT_EQ(to_hex(Sha256::hash("x")).size(), 64u);
}

}  // namespace
}  // namespace upin::util
