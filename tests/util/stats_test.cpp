// Tests for util/stats: moments, quantiles, Tukey boxes, histograms.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace upin::util {
namespace {

TEST(RunningMoments, SingleSample) {
  RunningMoments m;
  m.add(4.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 4.0);
  EXPECT_DOUBLE_EQ(m.max(), 4.0);
}

TEST(RunningMoments, KnownVariance) {
  RunningMoments m;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(RunningMoments, MatchesBatchStddev) {
  const std::vector<double> xs{1.5, 2.5, 8.0, -3.0, 0.0};
  RunningMoments m;
  for (const double x : xs) m.add(x);
  EXPECT_NEAR(m.stddev(), stddev(xs), 1e-12);
}

TEST(RunningMoments, NumericalStabilityWithLargeOffset) {
  RunningMoments m;
  for (int i = 0; i < 1000; ++i) m.add(1e9 + (i % 2));
  EXPECT_NEAR(m.variance(), 0.25025, 1e-3);
}

TEST(Quantile, MedianOddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 17.5);  // type-7
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 32.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.1), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.9), 7.0);
}

TEST(Quantile, ClampsQOutsideUnit) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

TEST(Quantile, IsMonotoneInQ) {
  const std::vector<double> xs{3.0, 9.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  double previous = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = quantile(xs, q);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST(Mean, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(BoxStats, SimpleDataset) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxStats box = box_stats(xs);
  EXPECT_EQ(box.count, 9u);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.q1, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 7.0);
  EXPECT_DOUBLE_EQ(box.iqr, 4.0);
  EXPECT_DOUBLE_EQ(box.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 9.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(BoxStats, DetectsOutliers) {
  std::vector<double> xs{10, 11, 12, 13, 14, 15, 16, 100, -50};
  const BoxStats box = box_stats(xs);
  ASSERT_EQ(box.outliers.size(), 2u);
  EXPECT_DOUBLE_EQ(box.outliers.front(), -50.0);
  EXPECT_DOUBLE_EQ(box.outliers.back(), 100.0);
  // Whiskers stop at the most extreme non-outlier samples.
  EXPECT_DOUBLE_EQ(box.whisker_low, 10.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 16.0);
}

TEST(BoxStats, ConstantData) {
  const std::vector<double> xs{5, 5, 5, 5};
  const BoxStats box = box_stats(xs);
  EXPECT_DOUBLE_EQ(box.iqr, 0.0);
  EXPECT_DOUBLE_EQ(box.whisker_low, 5.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 5.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(BoxStats, SingleSample) {
  const std::vector<double> xs{3.5};
  const BoxStats box = box_stats(xs);
  EXPECT_EQ(box.count, 1u);
  EXPECT_DOUBLE_EQ(box.median, 3.5);
  EXPECT_DOUBLE_EQ(box.minimum, 3.5);
  EXPECT_DOUBLE_EQ(box.maximum, 3.5);
}

TEST(BoxStats, InvariantOrdering) {
  const std::vector<double> xs{9.0, 2.7, 3.1, 8.4, 5.5, 1.2, 7.7, 4.4};
  const BoxStats box = box_stats(xs);
  EXPECT_LE(box.minimum, box.whisker_low);
  EXPECT_LE(box.whisker_low, box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3, box.whisker_high);
  EXPECT_LE(box.whisker_high, box.maximum);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-5.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(4), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 17.5);
}

TEST(Histogram, BoundaryLandsInUpperBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(2.0);  // exactly on the 0/1 edge -> bin 1
  EXPECT_EQ(h.count(1), 1u);
}

TEST(BucketIndex, EmptyLayoutIsBinZero) {
  EXPECT_EQ(bucket_index(0.0, 1.0, 0, 5.0), 0u);
}

TEST(BucketIndex, SingleBinSwallowsEverything) {
  EXPECT_EQ(bucket_index(0.0, 10.0, 1, -3.0), 0u);
  EXPECT_EQ(bucket_index(0.0, 10.0, 1, 5.0), 0u);
  EXPECT_EQ(bucket_index(0.0, 10.0, 1, 99.0), 0u);
}

TEST(BucketIndex, BoundariesLandInUpperBin) {
  // [0,10) in 5 bins of width 2: an exact edge belongs to the bin above.
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, 0.0), 0u);
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, 2.0), 1u);
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, 4.0), 2u);
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, 9.999), 4u);
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, 10.0), 4u);  // clamped at hi
}

TEST(BucketIndex, NonFiniteGuard) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, inf), 4u);
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, -inf), 0u);
  EXPECT_EQ(bucket_index(0.0, 2.0, 5, std::nan("")), 0u);
}

TEST(Histogram, EmptyHistogramReadsAsZeros) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.total(), 0u);
  for (std::size_t bin = 0; bin < 5; ++bin) EXPECT_EQ(h.count(bin), 0u);
}

TEST(Histogram, InfinitiesClampToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Pearson, PerfectCorrelations) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);   // zero variance
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);   // empty
}

}  // namespace
}  // namespace upin::util
