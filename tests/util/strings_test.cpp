// Tests for util/strings.
#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace upin::util {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(Split, NoSeparator) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, PreservesInnerWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("16-ffaa:0:1002", "16-"));
  EXPECT_FALSE(starts_with("16", "16-"));
  EXPECT_TRUE(ends_with("150Mbps", "Mbps"));
  EXPECT_FALSE(ends_with("Mb", "Mbps"));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int(" 12").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(ParseUint, DecimalAndHex) {
  EXPECT_EQ(parse_uint("255"), 255u);
  EXPECT_EQ(parse_uint("ff", 16), 255u);
  EXPECT_EQ(parse_uint("ffaa", 16), 0xffaau);
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("g", 16).has_value());
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(Format, PrintfSemantics) {
  EXPECT_EQ(format("%d_%s", 2, "15"), "2_15");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("nothing"), "nothing");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-17"), "abc-17");
  EXPECT_EQ(to_lower(""), "");
}

TEST(WildcardMatch, Literals) {
  EXPECT_TRUE(wildcard_match("abc", "abc"));
  EXPECT_FALSE(wildcard_match("abc", "abd"));
  EXPECT_FALSE(wildcard_match("abc", "ab"));
}

TEST(WildcardMatch, Star) {
  EXPECT_TRUE(wildcard_match("*", ""));
  EXPECT_TRUE(wildcard_match("*", "anything"));
  EXPECT_TRUE(wildcard_match("16-*", "16-ffaa:0:1002"));
  EXPECT_TRUE(wildcard_match("*1002", "16-ffaa:0:1002"));
  EXPECT_TRUE(wildcard_match("16-*:1002", "16-ffaa:0:1002"));
  EXPECT_FALSE(wildcard_match("17-*", "16-ffaa:0:1002"));
}

TEST(WildcardMatch, QuestionMark) {
  EXPECT_TRUE(wildcard_match("a?c", "abc"));
  EXPECT_FALSE(wildcard_match("a?c", "ac"));
  EXPECT_FALSE(wildcard_match("a?c", "abbc"));
}

TEST(WildcardMatch, StarBacktracking) {
  EXPECT_TRUE(wildcard_match("a*b*c", "axxbyyc"));
  EXPECT_TRUE(wildcard_match("a*b*c", "abbc"));
  EXPECT_FALSE(wildcard_match("a*b*c", "axxbyy"));
  EXPECT_TRUE(wildcard_match("**", "x"));
}

TEST(WildcardMatch, EmptyPattern) {
  EXPECT_TRUE(wildcard_match("", ""));
  EXPECT_FALSE(wildcard_match("", "x"));
}

}  // namespace
}  // namespace upin::util
