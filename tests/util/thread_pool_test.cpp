// Tests for util/thread_pool.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace upin::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&] { value = 7; }).get();
  EXPECT_EQ(value.load(), 7);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ExceptionReachesFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, DisjointSlotsNeedNoSynchronization) {
  ThreadPool pool(4);
  std::vector<double> out(512, 0.0);
  parallel_for(pool, out.size(),
               [&](std::size_t i) { out[i] = static_cast<double>(i) * 2; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2);
  }
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 42) throw std::logic_error("bad index");
                   }),
      std::logic_error);
}

TEST(ParallelFor, CountSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  parallel_for(pool, 3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace upin::util
